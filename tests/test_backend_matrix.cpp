// Backend-invariance matrix: the analysis consumes only trace structure,
// so the verdicts must not depend on which file system the run was traced
// on — the paper traced on Lustre (strong semantics) and predicted
// behaviour on weaker systems; we verify that tracing on any backend
// (strong/commit/session Pfs, or the burst buffer) yields the same
// conflict classes and pattern classification.

#include <gtest/gtest.h>

#include "pfsem/apps/registry.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/pattern.hpp"
#include "pfsem/vfs/burst_buffer.hpp"

namespace pfsem {
namespace {

struct Signature {
  bool waw_s, waw_d, raw_s, raw_d;
  bool c_waw_s, c_waw_d, c_raw_s, c_raw_d;
  std::string xy;
  std::string layout;

  bool operator==(const Signature&) const = default;
};

apps::AppConfig small_cfg() {
  apps::AppConfig cfg;
  cfg.nranks = 16;
  cfg.ranks_per_node = 4;
  cfg.bytes_per_rank = 64 * 1024;
  return cfg;
}

Signature signature_of(const trace::TraceBundle& bundle, int nranks) {
  const auto log = core::reconstruct_accesses(bundle);
  const auto rep = core::detect_conflicts(log);
  const auto pat = core::classify_high_level(log, nranks);
  return {rep.session.waw_s, rep.session.waw_d, rep.session.raw_s,
          rep.session.raw_d, rep.commit.waw_s,  rep.commit.waw_d,
          rep.commit.raw_s,  rep.commit.raw_d,  pat.xy,
          std::string(core::to_string(pat.layout))};
}

Signature run_on_pfs(const apps::AppInfo& info, vfs::ConsistencyModel m) {
  vfs::PfsConfig pc;
  pc.model = m;
  const auto cfg = small_cfg();
  apps::Harness h(cfg, pc);
  info.run(h);
  return signature_of(h.finish(), cfg.nranks);
}

Signature run_on_bb(const apps::AppInfo& info) {
  const auto cfg = small_cfg();
  vfs::BurstBufferConfig bc;
  bc.ranks_per_node = cfg.ranks_per_node;
  apps::Harness h(cfg, std::make_unique<vfs::BurstBufferPfs>(bc));
  info.run(h);
  return signature_of(h.finish(), cfg.nranks);
}

class BackendMatrix : public ::testing::TestWithParam<const char*> {};

TEST_P(BackendMatrix, VerdictIndependentOfTracingBackend) {
  const auto* info = apps::find_app(GetParam());
  ASSERT_NE(info, nullptr);
  const auto strong = run_on_pfs(*info, vfs::ConsistencyModel::Strong);
  EXPECT_EQ(run_on_pfs(*info, vfs::ConsistencyModel::Commit), strong)
      << "commit-backend trace must yield the same verdict";
  EXPECT_EQ(run_on_pfs(*info, vfs::ConsistencyModel::Session), strong)
      << "session-backend trace must yield the same verdict";
  EXPECT_EQ(run_on_bb(*info), strong)
      << "burst-buffer trace must yield the same verdict";
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BackendMatrix,
    ::testing::Values("FLASH-fbs", "FLASH-nofbs", "ENZO", "NWChem",
                      "LAMMPS-ADIOS", "LAMMPS-NetCDF", "MACSio", "GAMESS",
                      "pF3D-IO", "VPIC-IO", "LBANN", "MILC-QCD Parallel"),
    [](const ::testing::TestParamInfo<const char*>& pinfo) {
      std::string name = pinfo.param;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace pfsem
