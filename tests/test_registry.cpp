// Tests for the application registry and end-to-end run reproducibility.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "pfsem/apps/registry.hpp"
#include "pfsem/trace/serialize.hpp"

namespace pfsem::apps {
namespace {

TEST(Registry, CoversSeventeenApplications) {
  std::set<std::string> applications;
  for (const auto& info : registry()) applications.insert(info.app);
  EXPECT_EQ(applications.size(), 17u) << "the paper studies 17 applications";
  EXPECT_EQ(registry().size(), 25u) << "in 25 (app, I/O library) configs";
}

TEST(Registry, NamesUniqueAndFindable) {
  std::set<std::string> names;
  for (const auto& info : registry()) {
    EXPECT_TRUE(names.insert(info.name).second) << "duplicate " << info.name;
    EXPECT_EQ(find_app(info.name), &info);
    EXPECT_FALSE(info.iolib.empty());
    EXPECT_FALSE(info.description.empty());
    EXPECT_TRUE(info.run != nullptr);
  }
  EXPECT_EQ(find_app("NoSuchApp"), nullptr);
}

TEST(Registry, TableFourHasSevenConflictingApplications) {
  std::set<std::string> conflicting;
  for (const auto& info : registry()) {
    if (info.expect.any_conflict()) conflicting.insert(info.app);
  }
  // FLASH, ENZO, NWChem, pF3D-IO, MACSio, GAMESS, LAMMPS (Table 4).
  EXPECT_EQ(conflicting.size(), 7u);
  EXPECT_TRUE(conflicting.contains("FLASH"));
  EXPECT_TRUE(conflicting.contains("LAMMPS"));
}

TEST(Registry, OnlyFlashHasCrossProcessConflicts) {
  for (const auto& info : registry()) {
    const bool d = info.expect.waw_d || info.expect.raw_d;
    EXPECT_EQ(d, info.app == "FLASH") << info.name;
    EXPECT_EQ(info.expect.commit_clears, info.app == "FLASH") << info.name;
  }
}

TEST(Registry, LammpsHasFiveBackends) {
  int lammps = 0;
  for (const auto& info : registry()) {
    if (info.app == "LAMMPS") ++lammps;
  }
  EXPECT_EQ(lammps, 5);
}

std::string serialized_run(const AppInfo& info, std::uint64_t seed) {
  AppConfig cfg;
  cfg.nranks = 8;
  cfg.ranks_per_node = 4;
  cfg.seed = seed;
  cfg.bytes_per_rank = 64 * 1024;
  const auto bundle = run_app(info, cfg);
  std::ostringstream os;
  trace::write_binary(bundle, os);
  return os.str();
}

TEST(Determinism, SameSeedSameTraceBitForBit) {
  for (const char* name : {"FLASH-fbs", "LAMMPS-ADIOS", "MACSio", "NWChem"}) {
    const auto* info = find_app(name);
    ASSERT_NE(info, nullptr);
    SCOPED_TRACE(name);
    EXPECT_EQ(serialized_run(*info, 7), serialized_run(*info, 7))
        << "simulation must be bit-reproducible";
  }
}

TEST(Determinism, DifferentSeedDifferentJitter) {
  const auto* info = find_app("FLASH-nofbs");
  EXPECT_NE(serialized_run(*info, 1), serialized_run(*info, 2))
      << "seeds drive workload shaping and jitter";
}

TEST(Determinism, RunsAreIsolated) {
  // Two runs back to back must not leak state into each other.
  const auto* info = find_app("LAMMPS-NetCDF");
  const auto first = serialized_run(*info, 3);
  (void)serialized_run(*find_app("MACSio"), 5);
  EXPECT_EQ(serialized_run(*info, 3), first);
}

}  // namespace
}  // namespace pfsem::apps
