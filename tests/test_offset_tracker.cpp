// Unit + property tests for offset reconstruction (Section 5.1): open
// flags, lseek whence, implicit offset advance, O_APPEND via tracked file
// size, and the expanded-record annotations (t_open / t_commit / t_close).

#include <gtest/gtest.h>

#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/util/error.hpp"
#include "pfsem/util/rng.hpp"

namespace pfsem::core {
namespace {

using trace::Func;
using trace::Layer;

/// Small builder for hand-written POSIX traces.
class TraceBuilder {
 public:
  explicit TraceBuilder(int nranks) { bundle_.nranks = nranks; }

  TraceBuilder& open(Rank r, int fd, const std::string& path, int flags) {
    add(r, Func::open, fd, fd, 0, 0, flags, path);
    return *this;
  }
  TraceBuilder& close(Rank r, int fd) {
    add(r, Func::close, fd, 0, 0, 0, 0, "");
    return *this;
  }
  TraceBuilder& write(Rank r, int fd, std::uint64_t n) {
    add(r, Func::write, fd, static_cast<std::int64_t>(n), 0, n, 0, "");
    return *this;
  }
  TraceBuilder& read(Rank r, int fd, std::uint64_t n) {
    add(r, Func::read, fd, static_cast<std::int64_t>(n), 0, n, 0, "");
    return *this;
  }
  TraceBuilder& pwrite(Rank r, int fd, Offset off, std::uint64_t n) {
    add(r, Func::pwrite, fd, static_cast<std::int64_t>(n), off, n, 0, "");
    return *this;
  }
  TraceBuilder& pread(Rank r, int fd, Offset off, std::uint64_t n) {
    add(r, Func::pread, fd, static_cast<std::int64_t>(n), off, n, 0, "");
    return *this;
  }
  TraceBuilder& lseek(Rank r, int fd, std::int64_t off, int whence) {
    add(r, Func::lseek, fd, 0, static_cast<Offset>(off), 0, whence, "");
    return *this;
  }
  TraceBuilder& fsync(Rank r, int fd) {
    add(r, Func::fsync, fd, 0, 0, 0, 0, "");
    return *this;
  }
  TraceBuilder& ftruncate(Rank r, int fd, Offset len) {
    add(r, Func::ftruncate, fd, 0, len, 0, 0, "");
    return *this;
  }

  [[nodiscard]] const trace::TraceBundle& bundle() const { return bundle_; }
  [[nodiscard]] SimTime last_time() const { return t_; }

 private:
  void add(Rank r, Func f, int fd, std::int64_t ret, Offset off,
           std::uint64_t count, int flags, const std::string& path) {
    trace::Record rec;
    rec.tstart = t_;
    rec.tend = t_ + 5;
    t_ += 10;
    rec.rank = r;
    rec.layer = Layer::Posix;
    rec.func = f;
    rec.fd = fd;
    rec.ret = ret;
    rec.offset = off;
    rec.count = count;
    rec.flags = flags;
    rec.file = path.empty() ? kNoFile : bundle_.intern(path);
    bundle_.records.push_back(std::move(rec));
  }

  trace::TraceBundle bundle_;
  SimTime t_ = 0;
};

TEST(OffsetTracker, SequentialWritesAdvance) {
  TraceBuilder tb(1);
  tb.open(0, 3, "f", trace::kCreate).write(0, 3, 100).write(0, 3, 50).close(0, 3);
  const auto log = reconstruct_accesses(tb.bundle());
  const auto& acc = log.at("f").accesses;
  ASSERT_EQ(acc.size(), 2u);
  EXPECT_EQ(acc[0].ext, (Extent{0, 100}));
  EXPECT_EQ(acc[1].ext, (Extent{100, 150}));
  EXPECT_EQ(acc[0].type, AccessType::Write);
}

TEST(OffsetTracker, SeekSetCurEnd) {
  TraceBuilder tb(1);
  tb.open(0, 3, "f", trace::kCreate)
      .write(0, 3, 1000)
      .lseek(0, 3, 100, trace::kSeekSet)
      .read(0, 3, 50)  // [100,150)
      .lseek(0, 3, 30, trace::kSeekCur)
      .read(0, 3, 20)  // [180,200)
      .lseek(0, 3, -100, trace::kSeekEnd)
      .read(0, 3, 100)  // [900,1000)
      .close(0, 3);
  const auto log = reconstruct_accesses(tb.bundle());
  const auto& acc = log.at("f").accesses;
  ASSERT_EQ(acc.size(), 4u);
  EXPECT_EQ(acc[1].ext, (Extent{100, 150}));
  EXPECT_EQ(acc[2].ext, (Extent{180, 200}));
  EXPECT_EQ(acc[3].ext, (Extent{900, 1000}));
}

TEST(OffsetTracker, AppendTracksSharedFileSize) {
  // Two ranks appending to the same file: each write lands at the current
  // global EOF, which only tracked size can reconstruct.
  TraceBuilder tb(2);
  tb.open(0, 3, "log", trace::kCreate | trace::kAppend)
      .open(1, 3, "log", trace::kAppend)
      .write(0, 3, 100)   // [0,100)
      .write(1, 3, 200)   // [100,300)
      .write(0, 3, 50)    // [300,350)
      .close(0, 3)
      .close(1, 3);
  const auto log = reconstruct_accesses(tb.bundle());
  const auto& acc = log.at("log").accesses;
  ASSERT_EQ(acc.size(), 3u);
  EXPECT_EQ(acc[0].ext, (Extent{0, 100}));
  EXPECT_EQ(acc[1].ext, (Extent{100, 300}));
  EXPECT_EQ(acc[2].ext, (Extent{300, 350}));
}

TEST(OffsetTracker, TruncResetsSize) {
  TraceBuilder tb(1);
  tb.open(0, 3, "f", trace::kCreate)
      .write(0, 3, 500)
      .close(0, 3)
      .open(0, 4, "f", trace::kTrunc)
      .lseek(0, 4, 0, trace::kSeekEnd)
      .write(0, 4, 10)  // EOF is 0 after O_TRUNC
      .close(0, 4);
  const auto log = reconstruct_accesses(tb.bundle());
  const auto& acc = log.at("f").accesses;
  EXPECT_EQ(acc.back().ext, (Extent{0, 10}));
}

TEST(OffsetTracker, FtruncateAdjustsSeekEnd) {
  TraceBuilder tb(1);
  tb.open(0, 3, "f", trace::kCreate)
      .write(0, 3, 500)
      .ftruncate(0, 3, 100)
      .lseek(0, 3, 0, trace::kSeekEnd)
      .write(0, 3, 10)
      .close(0, 3);
  const auto log = reconstruct_accesses(tb.bundle());
  EXPECT_EQ(log.at("f").accesses.back().ext, (Extent{100, 110}));
}

TEST(OffsetTracker, PreadDoesNotMoveOffset) {
  TraceBuilder tb(1);
  tb.open(0, 3, "f", trace::kCreate)
      .write(0, 3, 100)
      .pread(0, 3, 10, 20)
      .write(0, 3, 10)  // continues at 100, not 30
      .close(0, 3);
  const auto log = reconstruct_accesses(tb.bundle());
  const auto& acc = log.at("f").accesses;
  EXPECT_EQ(acc[2].ext, (Extent{100, 110}));
}

TEST(OffsetTracker, AnnotatesOpenCommitClose) {
  TraceBuilder tb(1);
  tb.open(0, 3, "f", trace::kCreate)   // t=0
      .write(0, 3, 100)                // t=10
      .fsync(0, 3)                     // t=20
      .write(0, 3, 100)                // t=30
      .close(0, 3);                    // t=40
  const auto log = reconstruct_accesses(tb.bundle());
  const auto& fl = log.at("f");
  ASSERT_EQ(fl.accesses.size(), 2u);
  const auto& w1 = fl.accesses[0];
  EXPECT_EQ(w1.t_open, 0);
  EXPECT_EQ(w1.t_commit, 20) << "fsync is the first succeeding commit";
  EXPECT_EQ(w1.t_close, 40);
  const auto& w2 = fl.accesses[1];
  EXPECT_EQ(w2.t_commit, 40) << "close acts as the commit for w2";
  EXPECT_EQ(w2.t_close, 40);
  // Commit table holds both the fsync and the close.
  EXPECT_EQ(fl.commits.at(0).size(), 2u);
  EXPECT_EQ(fl.closes.at(0).size(), 1u);
}

TEST(OffsetTracker, PerRankFdSpacesAreIndependent) {
  TraceBuilder tb(2);
  tb.open(0, 3, "a", trace::kCreate)
      .open(1, 3, "b", trace::kCreate)  // same fd number, different rank
      .write(0, 3, 10)
      .write(1, 3, 20)
      .close(0, 3)
      .close(1, 3);
  const auto log = reconstruct_accesses(tb.bundle());
  EXPECT_EQ(log.at("a").accesses[0].ext, (Extent{0, 10}));
  EXPECT_EQ(log.at("b").accesses[0].ext, (Extent{0, 20}));
}

TEST(OffsetTracker, ZeroByteOpsIgnored) {
  TraceBuilder tb(1);
  tb.open(0, 3, "f", trace::kCreate).write(0, 3, 0).read(0, 3, 0).close(0, 3);
  const auto log = reconstruct_accesses(tb.bundle());
  EXPECT_TRUE(log.at("f").accesses.empty());
}

TEST(OffsetTracker, UnknownFdThrows) {
  TraceBuilder tb(1);
  tb.write(0, 9, 10);
  EXPECT_THROW(reconstruct_accesses(tb.bundle()), Error);
}

// Property test: a random legal op sequence reconstructs to exactly the
// offsets a reference file-descriptor model produces.
TEST(OffsetTrackerProperty, MatchesReferenceModelOnRandomSequences) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    TraceBuilder tb(1);
    Offset model_offset = 0;
    Offset model_size = 0;
    std::vector<Extent> expected;
    tb.open(0, 3, "f", trace::kCreate);
    const int ops = 60;
    for (int i = 0; i < ops; ++i) {
      switch (rng.below(5)) {
        case 0: {  // write
          const auto n = 1 + rng.below(100);
          expected.push_back({model_offset, model_offset + n});
          model_offset += n;
          model_size = std::max(model_size, model_offset);
          tb.write(0, 3, n);
          break;
        }
        case 1: {  // read (clip to size to keep ret == count simple)
          if (model_offset >= model_size) break;
          const auto avail = model_size - model_offset;
          const auto n = 1 + rng.below(std::min<std::uint64_t>(avail, 100));
          expected.push_back({model_offset, model_offset + n});
          model_offset += n;
          tb.read(0, 3, n);
          break;
        }
        case 2: {  // pwrite
          const auto off = rng.below(model_size + 50);
          const auto n = 1 + rng.below(100);
          expected.push_back({off, off + n});
          model_size = std::max(model_size, off + n);
          tb.pwrite(0, 3, off, n);
          break;
        }
        case 3: {  // lseek SET / CUR / END
          switch (rng.below(3)) {
            case 0: {
              const auto off = rng.below(model_size + 10);
              model_offset = off;
              tb.lseek(0, 3, static_cast<std::int64_t>(off), trace::kSeekSet);
              break;
            }
            case 1: {
              const auto d = static_cast<std::int64_t>(rng.below(20));
              model_offset += static_cast<Offset>(d);
              tb.lseek(0, 3, d, trace::kSeekCur);
              break;
            }
            default: {
              model_offset = model_size;
              tb.lseek(0, 3, 0, trace::kSeekEnd);
              break;
            }
          }
          break;
        }
        default: {  // ftruncate smaller
          if (model_size == 0) break;
          const auto len = rng.below(model_size);
          model_size = len;
          tb.ftruncate(0, 3, len);
          break;
        }
      }
    }
    tb.close(0, 3);
    const auto log = reconstruct_accesses(tb.bundle());
    const auto& acc = log.at("f").accesses;
    ASSERT_EQ(acc.size(), expected.size()) << "seed " << seed;
    for (std::size_t i = 0; i < acc.size(); ++i) {
      EXPECT_EQ(acc[i].ext, expected[i]) << "seed " << seed << " op " << i;
    }
  }
}

}  // namespace
}  // namespace pfsem::core
