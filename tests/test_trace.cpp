// Unit tests for the trace layer: record metadata, clock-skew application
// in the collector, binary round-tripping, and the metadata census.

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "pfsem/apps/registry.hpp"
#include "pfsem/core/metadata_census.hpp"
#include "pfsem/trace/collector.hpp"
#include "pfsem/trace/serialize.hpp"
#include "pfsem/util/error.hpp"
#include "pfsem/util/rng.hpp"

namespace pfsem::trace {
namespace {

TEST(Record, CommitFuncSet) {
  EXPECT_TRUE(is_commit_func(Func::fsync));
  EXPECT_TRUE(is_commit_func(Func::fdatasync));
  EXPECT_TRUE(is_commit_func(Func::fflush));
  EXPECT_TRUE(is_commit_func(Func::close));
  EXPECT_TRUE(is_commit_func(Func::fclose));
  EXPECT_FALSE(is_commit_func(Func::write));
  EXPECT_FALSE(is_commit_func(Func::open));
  EXPECT_FALSE(is_commit_func(Func::lseek));
}

TEST(Record, MetadataFuncSetMatchesPaperFootnote) {
  // Spot-check the monitored set of Section 6.4 footnote 3.
  for (Func f : {Func::stat, Func::lstat, Func::fstat, Func::getcwd,
                 Func::mkdir, Func::unlink, Func::rename, Func::chmod,
                 Func::access, Func::ftruncate, Func::dup, Func::umask}) {
    EXPECT_TRUE(is_metadata_func(f)) << to_string(f);
  }
  for (Func f : {Func::read, Func::write, Func::pread, Func::pwrite,
                 Func::open, Func::close, Func::fsync, Func::h5dwrite,
                 Func::mpi_file_open}) {
    EXPECT_FALSE(is_metadata_func(f)) << to_string(f);
  }
}

TEST(Record, NamesRoundTrip) {
  EXPECT_EQ(to_string(Func::pwrite), "pwrite");
  EXPECT_EQ(to_string(Func::h5fflush), "h5fflush");
  EXPECT_EQ(to_string(Func::mpi_file_write_at_all), "mpi_file_write_at_all");
  EXPECT_EQ(to_string(Layer::Posix), "POSIX");
  EXPECT_EQ(to_string(Layer::MpiIo), "MPI-IO");
  EXPECT_EQ(to_string(Layer::Hdf5), "HDF5");
}

TEST(PathTable, AliasSharesTheSlotWithoutGrowingTheTable) {
  PathTable t;
  const FileId a = t.intern("old-name");
  EXPECT_EQ(t.alias("new-name", a), a);
  EXPECT_EQ(t.size(), 1u) << "an alias must not mint a new slot";
  EXPECT_EQ(t.find("new-name"), a);
  EXPECT_EQ(t.view(a), "old-name") << "the dense table keeps the first name";
  // Interning the alias later resolves to the existing id.
  EXPECT_EQ(t.intern("new-name"), a);
  // Aliasing an already-interned name is a no-op returning its own id.
  const FileId b = t.intern("other");
  EXPECT_EQ(t.alias("other", a), b);
  EXPECT_EQ(t.size(), 2u);
}

TEST(Collector, InternRenameKeepsOneFileIdentity) {
  Collector c(1);
  const FileId before = c.intern("ckpt.tmp");
  const FileId renamed = c.intern_rename("ckpt.tmp", "ckpt");
  EXPECT_EQ(renamed, before) << "the rename record rides the source's id";
  // A later open of the new name continues the same file's history.
  EXPECT_EQ(c.intern("ckpt"), before);
  const auto bundle = c.take();
  EXPECT_EQ(bundle.paths.size(), 1u)
      << "no composite 'from -> to' slot, no slot for the new name";
}

TEST(Collector, AppliesPerRankClockSkew) {
  std::vector<sim::ClockModel> clocks(2);
  clocks[1].offset = 5000;
  Collector c(2, clocks);
  Record r0;
  r0.rank = 0;
  r0.tstart = 100;
  r0.tend = 200;
  c.emit(r0);
  Record r1 = r0;
  r1.rank = 1;
  c.emit(r1);
  EXPECT_EQ(c.bundle().records[0].tstart, 100);
  EXPECT_EQ(c.bundle().records[1].tstart, 5100);
  EXPECT_EQ(c.bundle().records[1].tend, 5200);
}

TEST(Collector, RejectsBadRank) {
  Collector c(2);
  Record r;
  r.rank = 7;
  EXPECT_THROW(c.emit(r), Error);
}

TEST(Collector, CommEventsGetLocalClocks) {
  std::vector<sim::ClockModel> clocks(2);
  clocks[1].offset = -300;
  Collector c(2, clocks);
  P2PEvent e;
  e.src = 0;
  e.dst = 1;
  e.t_send_start = 1000;
  e.t_send_end = 1100;
  e.t_recv_start = 1000;
  e.t_recv_end = 1200;
  c.emit_p2p(e);
  const auto& got = c.bundle().comm.p2p[0];
  EXPECT_EQ(got.t_send_start, 1000);
  EXPECT_EQ(got.t_recv_end, 900) << "receiver timestamps use its own clock";
}

TraceBundle sample_bundle() {
  Collector c(4);
  for (int i = 0; i < 10; ++i) {
    Record r;
    r.rank = i % 4;
    r.tstart = i * 100;
    r.tend = i * 100 + 50;
    r.layer = i % 2 ? Layer::Posix : Layer::Hdf5;
    r.origin = Layer::App;
    r.func = i % 2 ? Func::pwrite : Func::h5dwrite;
    r.fd = 3 + i;
    r.ret = 4096;
    r.offset = static_cast<Offset>(i) * 4096;
    r.count = 4096;
    r.file = c.intern("file_" + std::to_string(i % 3));
    c.emit(std::move(r));
  }
  c.emit_p2p({0, 1, 7, 128, 10, 20, 15, 30});
  CollectiveEvent ev;
  ev.kind = CollectiveKind::Allreduce;
  ev.root = kNoRank;
  ev.arrivals = {{0, 5, 9}, {1, 6, 9}, {2, 4, 9}, {3, 5, 9}};
  c.emit_collective(std::move(ev));
  return c.take();
}

TEST(Serialize, BinaryRoundTripPreservesEverything) {
  const auto original = sample_bundle();
  std::stringstream ss;
  write_binary(original, ss);
  const auto copy = read_binary(ss);

  ASSERT_EQ(copy.nranks, original.nranks);
  ASSERT_EQ(copy.records.size(), original.records.size());
  for (std::size_t i = 0; i < copy.records.size(); ++i) {
    const auto& a = original.records[i];
    const auto& b = copy.records[i];
    EXPECT_EQ(a.tstart, b.tstart);
    EXPECT_EQ(a.tend, b.tend);
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.layer, b.layer);
    EXPECT_EQ(a.origin, b.origin);
    EXPECT_EQ(a.func, b.func);
    EXPECT_EQ(a.fd, b.fd);
    EXPECT_EQ(a.ret, b.ret);
    EXPECT_EQ(a.offset, b.offset);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(original.path_of(a), copy.path_of(b));
  }
  ASSERT_EQ(copy.comm.p2p.size(), 1u);
  EXPECT_EQ(copy.comm.p2p[0].tag, 7);
  ASSERT_EQ(copy.comm.collectives.size(), 1u);
  EXPECT_EQ(copy.comm.collectives[0].kind, CollectiveKind::Allreduce);
  EXPECT_EQ(copy.comm.collectives[0].arrivals.size(), 4u);
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream ss;
  ss << "NOTATRACE-having-some-length-anyway";
  EXPECT_THROW(read_binary(ss), Error);
}

TEST(Serialize, RejectsTruncatedStream) {
  const auto original = sample_bundle();
  std::stringstream ss;
  write_binary(original, ss);
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream half(data);
  EXPECT_THROW(read_binary(half), Error);
}

TEST(Serialize, TextDumpMentionsRecords) {
  const auto original = sample_bundle();
  std::ostringstream os;
  write_text(original, os);
  EXPECT_NE(os.str().find("pwrite"), std::string::npos);
  EXPECT_NE(os.str().find("h5dwrite"), std::string::npos);
  EXPECT_NE(os.str().find("file_1"), std::string::npos);
}

TEST(Serialize, EmptyBundleRoundTrips) {
  TraceBundle b;
  b.nranks = 1;
  std::stringstream ss;
  write_binary(b, ss);
  const auto copy = read_binary(ss);
  EXPECT_EQ(copy.nranks, 1);
  EXPECT_TRUE(copy.records.empty());
}

TEST(Census, CountsPerFuncAndOrigin) {
  Collector c(2);
  auto meta = [&](Func f, Layer origin, Rank rank) {
    Record r;
    r.rank = rank;
    r.layer = Layer::Posix;
    r.origin = origin;
    r.func = f;
    c.emit(std::move(r));
  };
  meta(Func::stat, Layer::MpiIo, 0);
  meta(Func::stat, Layer::MpiIo, 1);
  meta(Func::lstat, Layer::Hdf5, 0);
  meta(Func::getcwd, Layer::App, 0);
  // Data ops and non-POSIX layers must not be counted.
  Record w;
  w.rank = 0;
  w.layer = Layer::Posix;
  w.func = Func::write;
  c.emit(std::move(w));
  Record h;
  h.rank = 0;
  h.layer = Layer::Hdf5;
  h.func = Func::h5dcreate;
  c.emit(std::move(h));

  const auto census = core::census_metadata(c.bundle());
  EXPECT_EQ(census.distinct_ops(), 3u);
  EXPECT_EQ(census.total(Func::stat), 2u);
  EXPECT_EQ(census.total(Func::lstat), 1u);
  EXPECT_EQ(census.total(Func::rename), 0u);
  EXPECT_TRUE(census.usage.at(Func::stat).contains(Layer::MpiIo));
  EXPECT_FALSE(census.used(Func::write));
}

TEST(Census, MonitoredListMatchesPredicate) {
  for (Func f : core::monitored_metadata_funcs()) {
    EXPECT_TRUE(is_metadata_func(f)) << to_string(f);
  }
  EXPECT_EQ(core::monitored_metadata_funcs().size(), 34u);
}

TEST(Bundle, RankRecordsFilters) {
  const auto b = sample_bundle();
  const auto r2 = b.rank_records(2);
  for (const auto& rec : r2) EXPECT_EQ(rec.rank, 2);
  std::size_t total = 0;
  for (Rank r = 0; r < 4; ++r) total += b.rank_records(r).size();
  EXPECT_EQ(total, b.records.size());
}


TEST(Compact, RoundTripPreservesEverything) {
  const auto original = sample_bundle();
  std::stringstream ss;
  write_compact(original, ss);
  const auto copy = read_compact(ss);
  ASSERT_EQ(copy.nranks, original.nranks);
  ASSERT_EQ(copy.records.size(), original.records.size());
  for (std::size_t i = 0; i < copy.records.size(); ++i) {
    const auto& a = original.records[i];
    const auto& b = copy.records[i];
    EXPECT_EQ(a.tstart, b.tstart);
    EXPECT_EQ(a.tend, b.tend);
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.layer, b.layer);
    EXPECT_EQ(a.origin, b.origin);
    EXPECT_EQ(a.func, b.func);
    EXPECT_EQ(a.fd, b.fd);
    EXPECT_EQ(a.ret, b.ret);
    EXPECT_EQ(a.offset, b.offset);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.flags, b.flags);
    EXPECT_EQ(original.path_of(a), copy.path_of(b));
  }
  ASSERT_EQ(copy.comm.p2p.size(), 1u);
  EXPECT_EQ(copy.comm.p2p[0].t_recv_end, original.comm.p2p[0].t_recv_end);
  ASSERT_EQ(copy.comm.collectives.size(), 1u);
  EXPECT_EQ(copy.comm.collectives[0].arrivals[3].t_exit,
            original.comm.collectives[0].arrivals[3].t_exit);
}

TEST(Compact, NegativeAndExtremeFieldsSurvive) {
  Collector c(2);
  Record r;
  r.rank = 1;
  r.tstart = -5;  // pre-normalization timestamps can be negative
  r.tend = -1;
  r.func = Func::lseek;
  r.fd = -1;
  r.ret = -1;
  r.offset = std::numeric_limits<Offset>::max() / 2;
  r.flags = -7;
  c.emit(r);
  const auto original = c.take();
  std::stringstream ss;
  write_compact(original, ss);
  const auto copy = read_compact(ss);
  EXPECT_EQ(copy.records[0].tstart, -5);
  EXPECT_EQ(copy.records[0].ret, -1);
  EXPECT_EQ(copy.records[0].offset, original.records[0].offset);
  EXPECT_EQ(copy.records[0].flags, -7);
}

TEST(Compact, RejectsBadMagicAndTruncation) {
  std::stringstream bad("NOTATRACE-at-all-really");
  EXPECT_THROW(read_compact(bad), Error);
  const auto original = sample_bundle();
  std::stringstream ss;
  write_compact(original, ss);
  std::string data = ss.str();
  data.resize(data.size() / 3);
  std::stringstream half(data);
  EXPECT_THROW(read_compact(half), Error);
}

// Failure injection: corrupt single bytes all over a valid stream; the
// reader must either succeed or throw pfsem::Error — never crash or hang.
TEST(Compact, FuzzSingleByteCorruption) {
  const auto original = sample_bundle();
  std::stringstream ss;
  write_compact(original, ss);
  const std::string good = ss.str();
  Rng rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    std::string bad = good;
    const auto pos = rng.below(bad.size());
    bad[pos] = static_cast<char>(rng.below(256));
    std::stringstream in(bad);
    try {
      (void)read_compact(in);
    } catch (const Error&) {
      // acceptable: detected corruption
    }
  }
  SUCCEED();
}

TEST(Compact, FuzzBinaryFormatToo) {
  const auto original = sample_bundle();
  std::stringstream ss;
  write_binary(original, ss);
  const std::string good = ss.str();
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::string bad = good;
    const auto pos = rng.below(bad.size());
    bad[pos] = static_cast<char>(rng.below(256));
    std::stringstream in(bad);
    try {
      (void)read_binary(in);
    } catch (const Error&) {
    }
  }
  SUCCEED();
}


TEST(Compact, SubstantiallySmallerOnRealTraces) {
  apps::AppConfig cfg;
  cfg.nranks = 16;
  cfg.ranks_per_node = 4;
  const auto bundle = apps::run_app(*apps::find_app("FLASH-fbs"), cfg);
  std::stringstream fixed, compact;
  write_binary(bundle, fixed);
  write_compact(bundle, compact);
  const auto fixed_size = fixed.str().size();
  const auto compact_size = compact.str().size();
  EXPECT_LT(compact_size * 3, fixed_size)
      << "compact=" << compact_size << " fixed=" << fixed_size
      << " — regular HPC traces should compress at least 3x";
  // And it still round-trips to an identical analysis input.
  const auto copy = read_compact(compact);
  EXPECT_EQ(copy.records.size(), bundle.records.size());
  EXPECT_EQ(copy.comm.collectives.size(), bundle.comm.collectives.size());
}

}  // namespace
}  // namespace pfsem::trace
