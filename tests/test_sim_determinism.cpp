// Differential tests for the two-tier bucketed scheduler against the
// retained heap oracle (sim::SchedulerKind::Heap): over seeded random
// schedules — delay(0) fairness bursts, near-window delays, far-future
// wakeups straddling the ring boundary, and TaskKilled unwinding in the
// middle of a same-time bucket — both scheduler kinds must produce the
// exact same firing sequence, event for event. This pins the engine's
// determinism contract: events fire in (time, insertion-seq) order no
// matter which tier holds them.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "pfsem/sim/engine.hpp"
#include "pfsem/sim/wait_queue.hpp"
#include "pfsem/util/error.hpp"
#include "pfsem/util/rng.hpp"

namespace pfsem::sim {
namespace {

/// One firing observation: (task id, simulated time).
using Firing = std::pair<int, SimTime>;

/// Drive `ntasks` coroutines through `rounds` delays drawn from a seeded
/// distribution that is deliberately delay(0)-heavy with a tail straddling
/// the ring window (0 .. well past kRingWindow=64), recording every
/// resumption.
std::vector<Firing> random_schedule(SchedulerKind kind, std::uint64_t seed,
                                    int ntasks, int rounds) {
  Engine e(kind);
  std::vector<Firing> firings;
  auto proc = [](Engine* eng, int id, std::uint64_t task_seed, int n,
                 std::vector<Firing>* out) -> Task<void> {
    Rng rng(task_seed);
    for (int i = 0; i < n; ++i) {
      SimDuration d = 0;
      const auto roll = rng.below(100);
      if (roll >= 70 && roll < 85) {
        d = static_cast<SimDuration>(1 + rng.below(63));  // inside the ring
      } else if (roll >= 85) {
        d = static_cast<SimDuration>(64 + rng.below(500));  // far heap tier
      }
      co_await eng->delay(d);
      out->emplace_back(id, eng->now());
    }
  };
  for (int id = 0; id < ntasks; ++id) {
    e.spawn(proc(&e, id, seed * 1000003 + static_cast<std::uint64_t>(id),
                 rounds, &firings));
  }
  e.run();
  return firings;
}

TEST(SchedulerDiff, RandomSchedulesFireIdenticallyAcrossKinds) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const auto bucketed =
        random_schedule(SchedulerKind::Bucketed, seed, 24, 40);
    const auto heap = random_schedule(SchedulerKind::Heap, seed, 24, 40);
    ASSERT_EQ(bucketed, heap) << "seed=" << seed;
  }
}

TEST(SchedulerDiff, SameTimeEventsFireInInsertionOrder) {
  // The fairness contract behind delay(0): at one timestamp, coroutines
  // resume in the order they suspended — round-robin, insertion stable —
  // under both scheduler kinds.
  for (const auto kind : {SchedulerKind::Bucketed, SchedulerKind::Heap}) {
    Engine e(kind);
    std::vector<int> order;
    auto proc = [](Engine* eng, int id, std::vector<int>* out) -> Task<void> {
      for (int round = 0; round < 3; ++round) {
        co_await eng->delay(0);
        out->push_back(id + round * 100);
      }
    };
    for (int id = 0; id < 8; ++id) e.spawn(proc(&e, id, &order));
    e.run();
    std::vector<int> want;
    for (int round = 0; round < 3; ++round) {
      for (int id = 0; id < 8; ++id) want.push_back(id + round * 100);
    }
    EXPECT_EQ(order, want) << "kind=" << static_cast<int>(kind);
    EXPECT_EQ(e.now(), 0);
  }
}

TEST(SchedulerDiff, TaskKilledMidBucketUnwindsIdentically) {
  // One task of a same-time cohort dies via TaskKilled partway through a
  // delay(0) burst; the survivors' firing order, the killed count, and
  // the final dispatch tally must match across scheduler kinds.
  auto run_kind = [](SchedulerKind kind) {
    Engine e(kind);
    std::vector<Firing> firings;
    auto proc = [](Engine* eng, int id, std::vector<Firing>* out) -> Task<void> {
      for (int i = 0; i < 6; ++i) {
        co_await eng->delay(0);
        if (id == 3 && i == 2) throw TaskKilled(id);
        out->emplace_back(id, eng->now());
      }
      co_await eng->delay(10);
      out->emplace_back(id + 1000, eng->now());
    };
    for (int id = 0; id < 8; ++id) e.spawn(proc(&e, id, &firings), id);
    e.run();
    return std::tuple{firings, e.killed_roots(), e.events_dispatched()};
  };
  const auto bucketed = run_kind(SchedulerKind::Bucketed);
  const auto heap = run_kind(SchedulerKind::Heap);
  EXPECT_EQ(std::get<0>(bucketed), std::get<0>(heap));
  EXPECT_EQ(std::get<1>(bucketed), 1);
  EXPECT_EQ(std::get<1>(heap), 1);
  EXPECT_EQ(std::get<2>(bucketed), std::get<2>(heap));
}

TEST(SchedulerDiff, RingBoundaryDelaysInterleaveWithHeapTier) {
  // Delays of exactly window-1 / window / window+1 ns land in different
  // tiers of the bucketed scheduler but must still fire in strict
  // (time, seq) order, identical to the heap oracle.
  auto run_kind = [](SchedulerKind kind) {
    Engine e(kind);
    std::vector<Firing> firings;
    auto proc = [](Engine* eng, int id, SimDuration d,
                   std::vector<Firing>* out) -> Task<void> {
      co_await eng->delay(d);
      out->emplace_back(id, eng->now());
      co_await eng->delay(d);
      out->emplace_back(id + 100, eng->now());
    };
    int id = 0;
    for (const SimDuration d : {63, 64, 65, 0, 1, 127, 128, 2, 63, 64}) {
      e.spawn(proc(&e, id++, d, &firings));
    }
    e.run();
    return firings;
  };
  EXPECT_EQ(run_kind(SchedulerKind::Bucketed), run_kind(SchedulerKind::Heap));
}

TEST(SchedulerDiff, WaitQueueWakesPreserveFifoUnderBucketing) {
  // WaitQueue::wake_all reschedules at the current time — straight into
  // the current bucket — and must keep FIFO park order.
  Engine e;
  ASSERT_EQ(e.scheduler(), SchedulerKind::Bucketed);
  WaitQueue wq(e);
  std::vector<int> order;
  auto waiter = [](WaitQueue* q, int id, std::vector<int>* out) -> Task<void> {
    co_await q->wait();
    out->push_back(id);
  };
  auto waker = [](Engine* eng, WaitQueue* q) -> Task<void> {
    co_await eng->delay(500);
    q->wake_all();
  };
  for (int id = 0; id < 6; ++id) e.spawn(waiter(&wq, id, &order));
  e.spawn(waker(&e, &wq));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(e.now(), 500);
}

TEST(SchedulerDiff, PastSchedulingRejectedInBothKinds) {
  for (const auto kind : {SchedulerKind::Bucketed, SchedulerKind::Heap}) {
    Engine e(kind);
    auto proc = [](Engine* eng) -> Task<void> { co_await eng->delay(100); };
    e.spawn(proc(&e));
    e.run();
    EXPECT_EQ(e.now(), 100);
    EXPECT_THROW(e.schedule(50, std::noop_coroutine()), Error);
  }
}

TEST(SchedulerDiff, LongSameTimeBurstStaysOrderedAndBounded) {
  // Thousands of delay(0) round-trips at one timestamp exercise the
  // bucket's consumed-prefix compaction; order must stay exact.
  Engine e;
  std::vector<int> order;
  auto proc = [](Engine* eng, int id, std::vector<int>* out) -> Task<void> {
    for (int i = 0; i < 400; ++i) co_await eng->delay(0);
    out->push_back(id);
  };
  for (int id = 0; id < 64; ++id) e.spawn(proc(&e, id, &order));
  e.run();
  std::vector<int> want;
  for (int id = 0; id < 64; ++id) want.push_back(id);
  EXPECT_EQ(order, want);
  EXPECT_EQ(e.now(), 0);
  EXPECT_EQ(e.events_dispatched(), 64u * 401u);
}

}  // namespace
}  // namespace pfsem::sim
