// Robustness tests for the trace codecs, plus on-disk compatibility
// fixtures. The compact (v2) format is LEB128 varints + zig-zag signed
// fields + an interned path table; these tests pin down its behaviour at
// the integer extremes and on malformed input, and the Compat suite
// hand-crafts pre-interning v1/v2 byte streams to prove that traces
// written before the FileId refactor still load and analyse identically
// to bundles built in memory today.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <iterator>
#include <limits>
#include <span>
#include <sstream>
#include <string>
#include <utility>

#include "pfsem/core/conflict.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/trace/serialize.hpp"
#include "pfsem/trace/spill.hpp"
#include "pfsem/util/error.hpp"

namespace pfsem::trace {
namespace {

// --- fixture-crafting helpers (independent re-implementations of the
// on-disk encodings, so a writer bug cannot hide behind a matching
// reader bug) -----------------------------------------------------------

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

std::uint64_t zz(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

template <typename T>
void put_le(std::string& out, T v) {
  char b[sizeof v];
  std::memcpy(b, &v, sizeof v);
  out.append(b, sizeof v);
}

Record make_record(Rank rank, SimTime t0, SimTime t1, Func func, int fd,
                   std::int64_t ret, Offset off, std::uint64_t count,
                   std::int32_t flags, FileId file) {
  Record r;
  r.tstart = t0;
  r.tend = t1;
  r.rank = rank;
  r.layer = Layer::Posix;
  r.origin = Layer::App;
  r.func = func;
  r.fd = fd;
  r.ret = ret;
  r.offset = off;
  r.count = count;
  r.flags = flags;
  r.file = file;
  return r;
}

/// Everything the analysis pipeline concludes from a bundle, as text:
/// per-file reconstructed accesses plus the conflict report.
std::string analysis_fingerprint(const TraceBundle& b) {
  const auto log = core::reconstruct_accesses(b);
  const auto rep = core::detect_conflicts(log);
  std::ostringstream os;
  os << log.nranks << '|' << log.file_count() << '\n';
  for (const FileId id : log.ids_by_path()) {
    os << log.path(id) << ':';
    for (const auto& a : log.files[id].accesses) {
      os << ' ' << a.t << ',' << a.rank << ',' << a.ext.begin << ','
         << a.ext.end << ',' << core::to_string(a.type) << ',' << a.t_open
         << ',' << a.t_commit << ',' << a.t_close;
    }
    os << '\n';
  }
  os << rep.potential_pairs << '|' << rep.session.count << rep.session.waw_s
     << rep.session.waw_d << rep.session.raw_s << rep.session.raw_d << '|'
     << rep.commit.count << rep.commit.waw_s << rep.commit.waw_d
     << rep.commit.raw_s << rep.commit.raw_d << '\n';
  for (const auto& c : rep.conflicts) {
    os << log.path(c.file) << ' ' << core::to_string(c.kind) << ' '
       << c.first.rank << ',' << c.first.t << ' ' << c.second.rank << ','
       << c.second.t << ' ' << c.same_process << c.under_commit
       << c.under_session << '\n';
  }
  return os.str();
}

/// The producer/consumer trace both Compat fixtures encode: rank 0
/// creates "shared" and writes [0, 100); rank 1 opens it and reads the
/// same range with no commit in between (a RAW conflict pair).
TraceBundle reference_bundle() {
  TraceBundle b;
  b.nranks = 2;
  const FileId shared = b.intern("shared");
  b.records.push_back(make_record(0, 100, 105, Func::open, 3, 3, 0, 0,
                                  kCreate | kRdWr, shared));
  b.records.push_back(
      make_record(0, 110, 120, Func::pwrite, 3, 100, 0, 100, 0, kNoFile));
  b.records.push_back(
      make_record(0, 130, 131, Func::close, 3, 0, 0, 0, 0, kNoFile));
  b.records.push_back(
      make_record(1, 200, 205, Func::open, 3, 3, 0, 0, kRdWr, shared));
  b.records.push_back(
      make_record(1, 210, 220, Func::pread, 3, 100, 0, 100, 0, kNoFile));
  b.records.push_back(
      make_record(1, 230, 231, Func::close, 3, 0, 0, 0, 0, kNoFile));
  return b;
}

// --- compact-codec robustness ------------------------------------------

TEST(CompactCodec, ZigZagAndVarintExtremesRoundTrip) {
  TraceBundle b;
  b.nranks = 1;
  const FileId f = b.intern("extremes");
  auto r = make_record(0, 0, 1, Func::pwrite, 3,
                       std::numeric_limits<std::int64_t>::min(),
                       std::numeric_limits<Offset>::max(),
                       std::numeric_limits<std::uint64_t>::max(),
                       std::numeric_limits<std::int32_t>::min(), f);
  b.records.push_back(r);
  r.ret = std::numeric_limits<std::int64_t>::max();
  r.fd = std::numeric_limits<std::int32_t>::max();
  r.flags = std::numeric_limits<std::int32_t>::max();
  r.tstart = 2;
  r.tend = 2;
  b.records.push_back(r);

  std::stringstream ss;
  write_compact(b, ss);
  const auto copy = read_compact(ss);
  ASSERT_EQ(copy.records.size(), 2u);
  EXPECT_EQ(copy.records[0].ret, std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(copy.records[0].offset, std::numeric_limits<Offset>::max());
  EXPECT_EQ(copy.records[0].count, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(copy.records[0].flags, std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(copy.records[1].ret, std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(copy.records[1].fd, std::numeric_limits<std::int32_t>::max());
  EXPECT_EQ(copy.records[1].flags, std::numeric_limits<std::int32_t>::max());
  EXPECT_EQ(copy.path_of(copy.records[0]), "extremes");
}

TEST(CompactCodec, OverlongVarintRejected) {
  // 11 continuation bytes push the decoder's shift past 64 bits; it must
  // fail loudly instead of silently wrapping.
  std::string s("PFSEMTR2", 8);
  s.append(11, static_cast<char>(0x80));
  std::istringstream is(s);
  EXPECT_THROW((void)read_compact(is), Error);
}

TEST(CompactCodec, BadMagicRejected) {
  std::istringstream is(std::string("PFSEMTRX", 8) + "\x01");
  EXPECT_THROW((void)read_compact(is), Error);
}

TEST(CompactCodec, EveryTruncationThrows) {
  std::stringstream ss;
  write_compact(reference_bundle(), ss);
  const std::string full = ss.str();
  for (std::size_t len = 0; len < full.size(); ++len) {
    std::istringstream is(full.substr(0, len));
    EXPECT_THROW((void)read_compact(is), Error) << "prefix length " << len;
  }
}

TEST(CompactCodec, DuplicatePathTableEntryRejected) {
  std::string s("PFSEMTR2", 8);
  put_varint(s, 1);  // nranks
  put_varint(s, 2);  // two path entries...
  put_varint(s, 1);
  s += "a";
  put_varint(s, 1);  // ...that collide
  s += "a";
  std::istringstream is(s);
  EXPECT_THROW((void)read_compact(is), Error);
}

TEST(CompactCodec, EmptyPathTableRoundTrips) {
  // A bundle whose records never name a file (pathless metadata ops) has
  // an empty in-memory table; the writer's synthesized empty-string slot
  // must decode back to kNoFile.
  TraceBundle b;
  b.nranks = 1;
  b.records.push_back(
      make_record(0, 10, 11, Func::umask, -1, 0, 0, 0, 022, kNoFile));
  std::stringstream ss;
  write_compact(b, ss);
  const auto copy = read_compact(ss);
  ASSERT_EQ(copy.records.size(), 1u);
  EXPECT_EQ(copy.records[0].file, kNoFile);
  EXPECT_EQ(copy.path_of(copy.records[0]), "");
}

TEST(CompactCodec, EmptyBundleRoundTrips) {
  TraceBundle b;
  b.nranks = 4;
  std::stringstream ss;
  write_compact(b, ss);
  const auto copy = read_compact(ss);
  EXPECT_EQ(copy.nranks, 4);
  EXPECT_TRUE(copy.records.empty());
  EXPECT_TRUE(copy.comm.p2p.empty());
  EXPECT_TRUE(copy.comm.collectives.empty());
}

// --- pre-refactor on-disk compatibility --------------------------------

TEST(SerializationCompat, V1InlinePathFixtureAnalysesIdentically) {
  // Byte-for-byte what the pre-interning v1 writer produced: fixed-width
  // little-endian fields with the path string inline in each record
  // (empty for pathless records).
  std::string s("PFSEMTRC", 8);
  put_le<std::uint32_t>(s, 1);  // version
  put_le<std::int32_t>(s, 2);   // nranks
  put_le<std::uint64_t>(s, 6);  // records
  const auto rec = [&](std::int64_t t0, std::int64_t t1, Rank rank, Func func,
                       std::int32_t fd, std::int64_t ret, std::uint64_t off,
                       std::uint64_t count, std::int32_t flags,
                       const std::string& path) {
    put_le(s, t0);
    put_le(s, t1);
    put_le(s, rank);
    s.push_back(0);  // layer = Posix
    s.push_back(6);  // origin = App
    put_le<std::uint16_t>(s, static_cast<std::uint16_t>(func));
    put_le(s, fd);
    put_le(s, ret);
    put_le(s, off);
    put_le(s, count);
    put_le(s, flags);
    put_le<std::uint32_t>(s, static_cast<std::uint32_t>(path.size()));
    s += path;
  };
  rec(100, 105, 0, Func::open, 3, 3, 0, 0, kCreate | kRdWr, "shared");
  rec(110, 120, 0, Func::pwrite, 3, 100, 0, 100, 0, "");
  rec(130, 131, 0, Func::close, 3, 0, 0, 0, 0, "");
  rec(200, 205, 1, Func::open, 3, 3, 0, 0, kRdWr, "shared");
  rec(210, 220, 1, Func::pread, 3, 100, 0, 100, 0, "");
  rec(230, 231, 1, Func::close, 3, 0, 0, 0, 0, "");
  put_le<std::uint64_t>(s, 0);  // p2p
  put_le<std::uint64_t>(s, 0);  // collectives

  std::istringstream is(s);
  const auto loaded = read_binary(is);
  ASSERT_EQ(loaded.records.size(), 6u);
  EXPECT_EQ(loaded.path_of(loaded.records[0]), "shared");
  EXPECT_EQ(loaded.records[1].file, kNoFile);
  EXPECT_EQ(analysis_fingerprint(loaded),
            analysis_fingerprint(reference_bundle()));
}

TEST(SerializationCompat, V2PathTableFixtureAnalysesIdentically) {
  // Byte-for-byte what the pre-refactor v2 writer produced: a leading
  // path table ("shared" then the synthesized empty slot) and per-record
  // table references, varint/zig-zag encoded with per-rank time deltas.
  std::string s("PFSEMTR2", 8);
  put_varint(s, 2);  // nranks
  put_varint(s, 2);  // path table: "shared", ""
  put_varint(s, 6);
  s += "shared";
  put_varint(s, 0);
  put_varint(s, 6);  // records
  std::int64_t prev[2] = {0, 0};
  const auto rec = [&](std::int64_t t0, std::int64_t t1, Rank rank, Func func,
                       std::int64_t fd, std::int64_t ret, std::uint64_t off,
                       std::uint64_t count, std::int64_t flags,
                       std::uint64_t path_id) {
    put_varint(s, static_cast<std::uint64_t>(rank));
    put_varint(s, zz(t0 - prev[rank]));
    put_varint(s, zz(t1 - t0));
    prev[rank] = t0;
    put_varint(s, 0 | (6u << 3) |
                      (static_cast<std::uint64_t>(func) << 6));  // Posix/App
    put_varint(s, zz(fd));
    put_varint(s, zz(ret));
    put_varint(s, off);
    put_varint(s, count);
    put_varint(s, zz(flags));
    put_varint(s, path_id);
  };
  rec(100, 105, 0, Func::open, 3, 3, 0, 0, kCreate | kRdWr, 0);
  rec(110, 120, 0, Func::pwrite, 3, 100, 0, 100, 0, 1);
  rec(130, 131, 0, Func::close, 3, 0, 0, 0, 0, 1);
  rec(200, 205, 1, Func::open, 3, 3, 0, 0, kRdWr, 0);
  rec(210, 220, 1, Func::pread, 3, 100, 0, 100, 0, 1);
  rec(230, 231, 1, Func::close, 3, 0, 0, 0, 0, 1);
  put_varint(s, 0);  // p2p
  put_varint(s, 0);  // collectives

  std::istringstream is(s);
  const auto loaded = read_compact(is);
  ASSERT_EQ(loaded.records.size(), 6u);
  EXPECT_EQ(loaded.path_of(loaded.records[0]), "shared");
  EXPECT_EQ(loaded.records[1].file, kNoFile);
  EXPECT_EQ(analysis_fingerprint(loaded),
            analysis_fingerprint(reference_bundle()));
}

// --- chunked streaming framing (PFSEMCK1) ------------------------------

/// Byte-for-byte what the chunk writer produces for reference_bundle()
/// split into two 3-record chunks: pinned independently so the on-disk
/// framing can never drift without this fixture failing. Unlike compact
/// v2, the chunk encoding needs no synthesized empty path slot — the
/// file field is 0 for kNoFile, id+1 otherwise.
std::string chunk_fixture() {
  std::string s("PFSEMCK1", 8);
  put_varint(s, 2);  // nranks
  std::int64_t prev[2] = {0, 0};
  const auto rec = [&](std::int64_t t0, std::int64_t t1, Rank rank, Func func,
                       std::int64_t fd, std::int64_t ret, std::uint64_t off,
                       std::uint64_t count, std::int64_t flags,
                       std::uint64_t file_plus_1) {
    put_varint(s, static_cast<std::uint64_t>(rank));
    put_varint(s, zz(t0 - prev[rank]));
    put_varint(s, zz(t1 - t0));
    prev[rank] = t0;
    put_varint(s, 0 | (6u << 3) |
                      (static_cast<std::uint64_t>(func) << 6));  // Posix/App
    put_varint(s, zz(fd));
    put_varint(s, zz(ret));
    put_varint(s, off);
    put_varint(s, count);
    put_varint(s, zz(flags));
    put_varint(s, file_plus_1);
  };
  s.push_back('C');  // chunk at seq 0, 3 records (rank 0's)
  put_varint(s, 0);
  put_varint(s, 3);
  rec(100, 105, 0, Func::open, 3, 3, 0, 0, kCreate | kRdWr, 1);
  rec(110, 120, 0, Func::pwrite, 3, 100, 0, 100, 0, 0);
  rec(130, 131, 0, Func::close, 3, 0, 0, 0, 0, 0);
  s.push_back('C');  // chunk at seq 3, 3 records (rank 1's)
  put_varint(s, 3);
  put_varint(s, 3);
  rec(200, 205, 1, Func::open, 3, 3, 0, 0, kRdWr, 1);
  rec(210, 220, 1, Func::pread, 3, 100, 0, 100, 0, 0);
  rec(230, 231, 1, Func::close, 3, 0, 0, 0, 0, 0);
  s.push_back('T');  // trailer: 6 records, one path, empty comm log
  put_varint(s, 6);
  put_varint(s, 1);
  put_varint(s, 6);
  s += "shared";
  put_varint(s, 0);  // p2p
  put_varint(s, 0);  // collectives
  return s;
}

/// Drain a chunk stream back into a TraceBundle (records + trailer).
TraceBundle decode_chunks(const std::string& bytes) {
  std::istringstream is(bytes);
  ChunkReader reader(is);
  TraceBundle b;
  b.nranks = reader.nranks();
  Record rec;
  while (reader.next(rec)) b.records.push_back(rec);
  auto trailer = reader.read_trailer();
  b.paths = std::move(trailer.paths);
  b.comm = std::move(trailer.comm);
  return b;
}

TEST(ChunkStream, WriterMatchesHandCraftedFixtureExactly) {
  const auto b = reference_bundle();
  SpillStore store(1u << 20);
  {
    ChunkWriter writer(store, b.nranks);
    writer.on_records(0, std::span<const Record>(b.records).subspan(0, 3));
    writer.on_records(3, std::span<const Record>(b.records).subspan(3, 3));
    StreamMeta meta;
    meta.nranks = b.nranks;
    meta.paths = b.paths;
    meta.records = 6;
    writer.finish(meta);
  }
  const auto in = store.open_read();
  const std::string written(std::istreambuf_iterator<char>(*in), {});
  ASSERT_EQ(written, chunk_fixture());
}

TEST(ChunkStream, FixtureDecodesAndAnalysesIdentically) {
  const auto loaded = decode_chunks(chunk_fixture());
  ASSERT_EQ(loaded.records.size(), 6u);
  EXPECT_EQ(loaded.path_of(loaded.records[0]), "shared");
  EXPECT_EQ(loaded.records[1].file, kNoFile);
  EXPECT_EQ(analysis_fingerprint(loaded),
            analysis_fingerprint(reference_bundle()));
}

TEST(ChunkStream, EveryTruncationThrows) {
  const std::string full = chunk_fixture();
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_THROW((void)decode_chunks(full.substr(0, len)), Error)
        << "prefix length " << len;
  }
}

TEST(ChunkStream, EmptyChunkTolerated) {
  // A zero-record chunk is valid framing (the writer skips them, but a
  // reader must not choke on one): splice 'C' <seq> <0> between chunks.
  const std::string full = chunk_fixture();
  const auto second = full.find('C', full.find('C', 8) + 1);
  ASSERT_NE(second, std::string::npos);
  std::string spliced = full.substr(0, second);
  spliced.push_back('C');
  put_varint(spliced, 3);  // base_seq continues the count
  put_varint(spliced, 0);  // zero records
  spliced += full.substr(second);
  EXPECT_EQ(analysis_fingerprint(decode_chunks(spliced)),
            analysis_fingerprint(reference_bundle()));
}

TEST(ChunkStream, OutOfOrderChunkRejected) {
  // A chunk whose base_seq does not continue the stream means a lost or
  // reordered chunk; the reader must fail loudly, not mis-merge.
  std::string s("PFSEMCK1", 8);
  put_varint(s, 2);  // nranks
  s.push_back('C');
  put_varint(s, 4);  // base_seq 4 in a stream that has seen 0 records
  put_varint(s, 1);
  EXPECT_THROW((void)decode_chunks(s), Error);
}

TEST(ChunkStream, BadMagicRejected) {
  std::string s("PFSEMCKX", 8);
  put_varint(s, 2);
  EXPECT_THROW((void)decode_chunks(s), Error);
}

TEST(ChunkStream, TrailerRecordCountMismatchRejected) {
  // Trailer claiming more records than the chunks carried: a truncated
  // middle (whole missing chunk) that per-chunk checks cannot see.
  std::string s = chunk_fixture();
  const auto t = s.rfind('T');
  ASSERT_NE(t, std::string::npos);
  std::string bad = s.substr(0, t);
  bad.push_back('T');
  put_varint(bad, 9);  // stream carried 6
  bad += s.substr(t + 2);
  EXPECT_THROW((void)decode_chunks(bad), Error);
}

}  // namespace
}  // namespace pfsem::trace
