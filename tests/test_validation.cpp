// Ground-truth validation: the conflict detector (which only sees the
// trace) must predict *exactly* the cases where the weak-semantics PFS
// actually returns stale data. This is a stronger check than the paper
// could run on real hardware — the simulated PFS lets us observe which
// write every read returned.
//
// The scenario sweeps writer/reader synchronization structure:
//   writer rank 0: write [0,4K)  [fsync?]  [close?]
//   barrier
//   reader rank 1: [reopen?]  read [0,4K)
// and cross-checks, for session and commit semantics independently:
//   detector predicts RAW-D conflict  <=>  the read observed a hole.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>

#include "pfsem/core/conflict.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/iolib/posix_io.hpp"
#include "pfsem/util/rng.hpp"

namespace pfsem {
namespace {

struct Scenario {
  bool writer_fsync;
  bool writer_close;
  bool reader_reopens;  // reader opens after the barrier (fresh session)
};

struct Outcome {
  bool stale = false;  // the read returned hole bytes
  trace::TraceBundle bundle;
};

Outcome run_scenario(vfs::ConsistencyModel model, Scenario sc) {
  sim::Engine engine;
  trace::Collector collector(2);
  vfs::PfsConfig pcfg;
  pcfg.model = model;
  vfs::Pfs pfs(pcfg);
  mpi::World world(engine, collector, mpi::WorldConfig{.nranks = 2});
  iolib::IoContext ctx{.engine = &engine,
                         .world = &world,
                         .pfs = &pfs,
                         .collector = &collector};
  iolib::PosixIo posix(ctx);

  Outcome out;
  auto writer = [&]() -> sim::Task<void> {
    const int fd = co_await posix.open(0, "shared", trace::kCreate | trace::kRdWr);
    co_await posix.write(0, fd, 4096);
    if (sc.writer_fsync) co_await posix.fsync(0, fd);
    if (sc.writer_close) co_await posix.close(0, fd);
    co_await world.barrier(0);
    if (!sc.writer_close) co_await posix.close(0, fd);
  };
  auto reader = [&]() -> sim::Task<void> {
    int fd = -1;
    if (!sc.reader_reopens) {
      // Session begins before the writer's data exists.
      fd = co_await posix.open(1, "shared", trace::kCreate | trace::kRdWr);
    }
    co_await world.barrier(1);
    if (sc.reader_reopens) {
      fd = co_await posix.open(1, "shared", trace::kRdWr);
    }
    co_await posix.pread(1, fd, 0, 4096);
    for (const auto& e : posix.last_read_extents()) {
      if (e.version == 0) out.stale = true;
    }
    co_await posix.close(1, fd);
  };
  engine.spawn(writer());
  engine.spawn(reader());
  engine.run();
  out.bundle = collector.take();
  return out;
}

class StalenessSweep : public ::testing::TestWithParam<int> {};

TEST_P(StalenessSweep, DetectorPredictsObservedStaleness) {
  const int bits = GetParam();
  const Scenario sc{(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0};
  SCOPED_TRACE("fsync=" + std::to_string(sc.writer_fsync) +
               " close=" + std::to_string(sc.writer_close) +
               " reopen=" + std::to_string(sc.reader_reopens));

  // Predict from the trace of a strong-model run (same access structure).
  const auto strong = run_scenario(vfs::ConsistencyModel::Strong, sc);
  EXPECT_FALSE(strong.stale) << "POSIX semantics must never be stale";
  const auto log = core::reconstruct_accesses(
      strong.bundle, {.validate_against_ground_truth = true});
  const auto rep = core::detect_conflicts(log);
  const bool predicts_session = rep.session.raw_d;
  const bool predicts_commit = rep.commit.raw_d;

  // Observe on the weak models.
  const auto session = run_scenario(vfs::ConsistencyModel::Session, sc);
  const auto commit = run_scenario(vfs::ConsistencyModel::Commit, sc);

  EXPECT_EQ(session.stale, predicts_session)
      << "session-semantics staleness must match the detector";
  EXPECT_EQ(commit.stale, predicts_commit)
      << "commit-semantics staleness must match the detector";
}

INSTANTIATE_TEST_SUITE_P(AllSyncShapes, StalenessSweep, ::testing::Range(0, 8),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           const int b = pinfo.param;
                           std::string n;
                           n += (b & 1) ? "fsync_" : "nofsync_";
                           n += (b & 2) ? "close_" : "noclose_";
                           n += (b & 4) ? "reopen" : "noreopen";
                           return n;
                         });

// WAW staleness: two writers to the same region; a later reader under
// strong semantics must see the second write, and under session semantics
// without close/open chains it may see neither/the first.
TEST(WawValidation, SessionMayLoseSecondWriteCommitKeepsIt) {
  auto run = [](vfs::ConsistencyModel model) {
    sim::Engine engine;
    trace::Collector collector(3);
    vfs::PfsConfig pcfg;
    pcfg.model = model;
    vfs::Pfs pfs(pcfg);
    mpi::World world(engine, collector, mpi::WorldConfig{.nranks = 3});
    iolib::IoContext ctx{.engine = &engine,
                         .world = &world,
                         .pfs = &pfs,
                         .collector = &collector};
    iolib::PosixIo posix(ctx);

    vfs::VersionTag second_version = 0;
    vfs::VersionTag seen = 0;
    auto w1 = [&]() -> sim::Task<void> {
      const int fd = co_await posix.open(0, "f", trace::kCreate | trace::kRdWr);
      co_await posix.pwrite(0, fd, 0, 1000);
      co_await posix.fsync(0, fd);
      co_await world.barrier(0);
      co_await world.barrier(0);
      co_await posix.close(0, fd);
    };
    auto w2 = [&]() -> sim::Task<void> {
      const int fd = co_await posix.open(1, "f", trace::kCreate | trace::kRdWr);
      co_await world.barrier(1);
      co_await posix.pwrite(1, fd, 0, 1000);
      co_await posix.fsync(1, fd);
      second_version = pfs.strong_view("f", 0, 1).front().version;
      co_await world.barrier(1);
      co_await posix.close(1, fd);
    };
    auto rd = [&]() -> sim::Task<void> {
      const int fd = co_await posix.open(2, "f", trace::kCreate | trace::kRdWr);
      co_await world.barrier(2);
      co_await world.barrier(2);
      co_await posix.pread(2, fd, 0, 1000);
      seen = posix.last_read_extents().front().version;
      co_await posix.close(2, fd);
    };
    engine.spawn(w1());
    engine.spawn(w2());
    engine.spawn(rd());
    engine.run();
    return std::pair{seen, second_version};
  };

  const auto [strong_seen, strong_v2] = run(vfs::ConsistencyModel::Strong);
  EXPECT_EQ(strong_seen, strong_v2) << "POSIX: last write wins";
  const auto [commit_seen, commit_v2] = run(vfs::ConsistencyModel::Commit);
  EXPECT_EQ(commit_seen, commit_v2) << "both writes committed before read";
  const auto [session_seen, session_v2] = run(vfs::ConsistencyModel::Session);
  EXPECT_NE(session_seen, session_v2)
      << "no close->open chain: the reader's session cannot see w2";
}


// ---------------------------------------------------------------------
// Randomized soundness property: generate race-free workloads with random
// writes/reads/fsyncs/close-reopen cycles on a shared file (every op
// barrier-separated, so ordering is program-enforced), run them under each
// weak model, and verify:
//   (1) every read that *observed* stale data is explained by the
//       detector: either the read is the second access of a flagged RAW
//       conflict, or it overlaps a flagged WAW conflict (two writes whose
//       visibility order inverts their write order can leave a *later*
//       reader stale even when the reader itself satisfies the pairwise
//       session/commit condition — an anomaly the paper's pairwise
//       formulation attributes to the WAW pair); and
//   (2) a run with no flagged conflicts never observes a stale read.

struct RandomRun {
  // (rank, read entry time) -> observed stale?
  std::map<std::pair<Rank, SimTime>, bool> reads;
  trace::TraceBundle bundle;
};

RandomRun run_random(vfs::ConsistencyModel model, std::uint64_t seed) {
  constexpr int kRanks = 4;
  constexpr int kOpsPerRank = 24;
  constexpr Offset kUniverse = 64 * 1024;

  sim::Engine engine;
  trace::Collector collector(kRanks);
  vfs::PfsConfig pcfg;
  pcfg.model = model;
  vfs::Pfs pfs(pcfg);
  mpi::World world(engine, collector, mpi::WorldConfig{.nranks = kRanks});
  iolib::IoContext ctx{.engine = &engine,
                         .world = &world,
                         .pfs = &pfs,
                         .collector = &collector};
  iolib::PosixIo posix(ctx);

  // Pre-generate each rank's op list so all models see identical programs.
  struct Op {
    int kind;  // 0 write, 1 read, 2 fsync, 3 close+reopen
    Offset off;
    std::uint64_t len;
  };
  std::vector<std::vector<Op>> plans(kRanks);
  Rng rng(seed);
  for (auto& plan : plans) {
    for (int i = 0; i < kOpsPerRank; ++i) {
      Op op;
      op.kind = static_cast<int>(rng.below(10));
      op.kind = op.kind < 4 ? 0 : (op.kind < 8 ? 1 : (op.kind == 8 ? 2 : 3));
      op.off = rng.below(kUniverse);
      op.len = 1 + rng.below(8 * 1024);
      plan.push_back(op);
    }
  }

  RandomRun out;
  auto program = [&](Rank r) -> sim::Task<void> {
    int fd = co_await posix.open(r, "shared", trace::kCreate | trace::kRdWr);
    for (int i = 0; i < kOpsPerRank; ++i) {
      // Lockstep barrier plus a per-rank stagger: operations of one step
      // are strictly serialized in time, so timestamp order is execution
      // order (the race-free property the paper validates in Section 5.2).
      co_await world.barrier(r);
      co_await engine.delay(static_cast<SimDuration>(r) * 100'000);
      const Op& op = plans[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)];
      switch (op.kind) {
        case 0:
          co_await posix.pwrite(r, fd, op.off, op.len);
          break;
        case 1: {
          const SimTime t = engine.now();
          // Snapshot the POSIX-semantics truth at read entry (the pread
          // below resolves against the same instant; later writes by
          // other ranks must not leak into the oracle).
          const auto truth = pfs.strong_view("shared", op.off, op.len);
          co_await posix.pread(r, fd, op.off, op.len);
          bool stale = false;
          auto version_at = [](const std::vector<vfs::ReadExtent>& v, Offset b) {
            for (const auto& e : v) {
              if (e.ext.contains(b)) return e.version;
            }
            return vfs::VersionTag{0};
          };
          for (Offset b = op.off; b < op.off + op.len; ++b) {
            if (version_at(posix.last_read_extents(), b) != version_at(truth, b)) {
              stale = true;
              break;
            }
          }
          out.reads[{r, t}] = stale;
          break;
        }
        case 2:
          co_await posix.fsync(r, fd);
          break;
        default:
          co_await posix.close(r, fd);
          fd = co_await posix.open(r, "shared", trace::kCreate | trace::kRdWr);
          break;
      }
    }
    co_await posix.close(r, fd);
  };
  for (Rank r = 0; r < kRanks; ++r) engine.spawn(program(r));
  engine.run();
  out.bundle = collector.take();
  return out;
}

class RandomWorkloadSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomWorkloadSweep, StaleReadsAreAlwaysFlagged) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (auto model :
       {vfs::ConsistencyModel::Session, vfs::ConsistencyModel::Commit}) {
    SCOPED_TRACE(vfs::to_string(model));
    const auto run = run_random(model, seed);
    const auto log = core::reconstruct_accesses(
        run.bundle, {.validate_against_ground_truth = true});
    const auto report =
        core::detect_conflicts(log, core::ConflictOptions{.max_examples_per_file = 100000});

    // Reads flagged as RAW-conflict seconds, and the byte ranges of
    // flagged WAW conflicts, under this model.
    std::set<std::pair<Rank, SimTime>> flagged;
    std::vector<Extent> waw_regions;
    std::map<std::pair<Rank, SimTime>, Extent> read_extents;
    for (const auto& fl : log.files) {
      for (const auto& a : fl.accesses) {
        if (a.type == core::AccessType::Read) {
          read_extents[{a.rank, a.t}] = a.ext;
        }
      }
    }
    for (const auto& c : report.conflicts) {
      const bool applies = model == vfs::ConsistencyModel::Session
                               ? c.under_session
                               : c.under_commit;
      if (!applies) continue;
      if (c.kind == core::ConflictKind::RAW) {
        flagged.insert({c.second.rank, c.second.t});
      } else {
        waw_regions.push_back(c.first.ext.intersect(c.second.ext));
      }
    }
    std::size_t stale_count = 0;
    for (const auto& [key, stale] : run.reads) {
      if (!stale) continue;
      ++stale_count;
      bool explained = flagged.contains(key);
      if (!explained) {
        const auto it = read_extents.find(key);
        if (it != read_extents.end()) {
          for (const auto& w : waw_regions) {
            if (w.overlaps(it->second)) {
              explained = true;
              break;
            }
          }
        }
      }
      EXPECT_TRUE(explained)
          << "stale read by rank " << key.first << " at t=" << key.second
          << " was not flagged (seed " << seed << ")";
    }
    if (flagged.empty() && waw_regions.empty()) {
      EXPECT_EQ(stale_count, 0u)
          << "no conflicts flagged, yet a read went stale";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadSweep, ::testing::Range(1, 13));

}  // namespace
}  // namespace pfsem
