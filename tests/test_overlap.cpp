// Unit + property tests for Algorithm 1 (overlap detection), including the
// random-interval equivalence sweep against the naive O(n^2) oracle.

#include <gtest/gtest.h>

#include "pfsem/core/overlap.hpp"
#include "pfsem/util/rng.hpp"

namespace pfsem::core {
namespace {

Access acc(Rank r, Offset begin, Offset end,
           AccessType type = AccessType::Write, SimTime t = 0) {
  Access a;
  a.rank = r;
  a.ext = {begin, end};
  a.type = type;
  a.t = t;
  return a;
}

TEST(Overlap, EmptyInput) {
  EXPECT_TRUE(detect_overlaps({}).empty());
}

TEST(Overlap, DisjointIntervalsNoPairs) {
  std::vector<Access> v{acc(0, 0, 10), acc(1, 10, 20), acc(2, 20, 30)};
  EXPECT_TRUE(detect_overlaps(v).empty()) << "touching != overlapping";
}

TEST(Overlap, SimplePair) {
  std::vector<Access> v{acc(0, 0, 10), acc(1, 5, 15)};
  const auto pairs = detect_overlaps(v);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, 0u);
  EXPECT_EQ(pairs[0].second, 1u);
}

TEST(Overlap, LongIntervalCoversManyLaterStarts) {
  // Regression guard for the sorted-sweep break condition: one long
  // interval overlapping many short ones that start after it.
  std::vector<Access> v{acc(0, 0, 1000)};
  for (int i = 0; i < 10; ++i) {
    v.push_back(acc(1, static_cast<Offset>(i) * 50 + 10,
                    static_cast<Offset>(i) * 50 + 20));
  }
  EXPECT_EQ(detect_overlaps(v).size(), 10u);
}

TEST(Overlap, WritesOnlyFilterDropsReadReadPairs) {
  std::vector<Access> v{acc(0, 0, 10, AccessType::Read),
                        acc(1, 5, 15, AccessType::Read),
                        acc(2, 8, 12, AccessType::Write)};
  const auto all = detect_overlaps(v, {.writes_only = false});
  const auto filtered = detect_overlaps(v, {.writes_only = true});
  EXPECT_EQ(all.size(), 3u);
  EXPECT_EQ(filtered.size(), 2u) << "read-read pair must be dropped";
}

TEST(Overlap, IdenticalIntervalsAllPair) {
  std::vector<Access> v(5, acc(0, 100, 200));
  EXPECT_EQ(detect_overlaps(v).size(), 10u);  // C(5,2)
}

TEST(Overlap, EmptyExtentNeverPairs) {
  std::vector<Access> v{acc(0, 10, 10), acc(1, 0, 100)};
  EXPECT_TRUE(detect_overlaps(v).empty());
}

TEST(Overlap, RankTableSymmetric) {
  std::vector<Access> v{acc(0, 0, 10), acc(2, 5, 15), acc(1, 100, 110)};
  const auto table = overlap_rank_table(v, 3);
  EXPECT_TRUE(table[0][2]);
  EXPECT_TRUE(table[2][0]);
  EXPECT_FALSE(table[0][1]);
  EXPECT_FALSE(table[1][2]);
  EXPECT_FALSE(table[0][0]);
}

struct SweepParams {
  int n;
  Offset universe;
  Offset max_len;
};

class OverlapSweep : public ::testing::TestWithParam<SweepParams> {};

// Property: Algorithm 1 finds exactly the same pairs as the naive oracle,
// across interval densities from sparse to heavily overlapping.
TEST_P(OverlapSweep, MatchesNaiveOracle) {
  const auto p = GetParam();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 977);
    std::vector<Access> v;
    v.reserve(static_cast<std::size_t>(p.n));
    for (int i = 0; i < p.n; ++i) {
      const Offset begin = rng.below(p.universe);
      const Offset len = rng.below(p.max_len + 1);
      v.push_back(acc(static_cast<Rank>(rng.below(8)), begin, begin + len,
                      rng.chance(0.5) ? AccessType::Write : AccessType::Read,
                      static_cast<SimTime>(i)));
    }
    for (bool writes_only : {false, true}) {
      const auto fast = detect_overlaps(v, {.writes_only = writes_only});
      const auto slow = detect_overlaps_naive(v, {.writes_only = writes_only});
      ASSERT_EQ(fast.size(), slow.size())
          << "seed " << seed << " writes_only " << writes_only;
      for (std::size_t i = 0; i < fast.size(); ++i) {
        EXPECT_EQ(fast[i].first, slow[i].first);
        EXPECT_EQ(fast[i].second, slow[i].second);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Densities, OverlapSweep,
    ::testing::Values(SweepParams{50, 10'000, 100},    // sparse
                      SweepParams{100, 1'000, 200},    // moderate
                      SweepParams{150, 200, 100},      // dense
                      SweepParams{80, 50, 60},         // nearly all overlap
                      SweepParams{100, 100'000, 0}),   // zero-length only
    [](const ::testing::TestParamInfo<SweepParams>& p) {
      return "n" + std::to_string(p.param.n) + "_u" +
             std::to_string(p.param.universe) + "_l" +
             std::to_string(p.param.max_len);
    });

}  // namespace
}  // namespace pfsem::core
