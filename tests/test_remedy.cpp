// Unit + integration tests for the commit-insertion remedy planner
// (Section 4.1's "insert commit operations at suitable points").

#include <gtest/gtest.h>

#include <algorithm>

#include "pfsem/apps/registry.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/remedy.hpp"

namespace pfsem::core {
namespace {

AccessLog log_with_accesses(
    std::vector<std::tuple<SimTime, Rank, Extent, AccessType>> rows) {
  AccessLog log;
  log.nranks = 4;
  FileLog fl;
  for (const auto& [t, rank, ext, type] : rows) {
    Access a;
    a.t = t;
    a.rank = rank;
    a.ext = ext;
    a.type = type;
    a.t_commit = kTimeNever;  // no commits in the original program
    a.t_close = kTimeNever;
    fl.accesses.push_back(a);
  }
  std::sort(fl.accesses.begin(), fl.accesses.end(),
            [](const Access& a, const Access& b) { return a.t < b.t; });
  log.put("f", std::move(fl));
  return log;
}

TEST(Remedy, SinglePairNeedsSingleCommit) {
  auto log = log_with_accesses({{100, 0, {0, 50}, AccessType::Write},
                                {500, 1, {0, 50}, AccessType::Read}});
  const auto plan = suggest_commits(log);
  ASSERT_EQ(plan.commits.size(), 1u);
  EXPECT_EQ(plan.commits[0].rank, 0);
  EXPECT_EQ(plan.commits[0].path, "f");
  EXPECT_GT(plan.commits[0].before, plan.commits[0].after);
  EXPECT_EQ(plan.uncoverable, 0u);
  EXPECT_FALSE(verify_plan(log, plan).any());
}

TEST(Remedy, OneCommitCoversManyReaders) {
  // One write at 100, five readers at 500..900: a single fsync before 500
  // clears everything.
  std::vector<std::tuple<SimTime, Rank, Extent, AccessType>> rows{
      {100, 0, {0, 50}, AccessType::Write}};
  for (int i = 0; i < 5; ++i) {
    rows.push_back({500 + i * 100, 1 + i % 3, Extent{0, 50}, AccessType::Read});
  }
  auto log = log_with_accesses(std::move(rows));
  const auto plan = suggest_commits(log);
  ASSERT_EQ(plan.commits.size(), 1u);
  EXPECT_EQ(plan.commits[0].pairs_cleared, 5u);
  EXPECT_FALSE(verify_plan(log, plan).any());
}

TEST(Remedy, RepeatedEpochsNeedOneCommitEach) {
  // Writer rewrites the region before each reader epoch: w@100 r@200,
  // w@300 r@400, w@500 r@600 — three separate windows for rank 0.
  auto log = log_with_accesses({{100, 0, {0, 50}, AccessType::Write},
                                {200, 1, {0, 50}, AccessType::Read},
                                {300, 0, {0, 50}, AccessType::Write},
                                {400, 1, {0, 50}, AccessType::Read},
                                {500, 0, {0, 50}, AccessType::Write},
                                {600, 1, {0, 50}, AccessType::Read}});
  const auto plan = suggest_commits(log);
  // Each write also conflicts with later writes' readers? No: the write
  // at 100 overlaps reads at 200/400/600, but the greedy cover may clear
  // them with the later commits; the minimum is 3 (one per write->next
  // read gap cannot be shared across writers' epochs).
  EXPECT_EQ(plan.commits.size(), 3u);
  EXPECT_FALSE(verify_plan(log, plan).any());
}

TEST(Remedy, SameProcessPairsOnlyInStrictMode) {
  auto log = log_with_accesses({{100, 2, {0, 50}, AccessType::Write},
                                {500, 2, {0, 50}, AccessType::Write}});
  EXPECT_TRUE(suggest_commits(log).commits.empty());
  const auto strict = suggest_commits(log, {.strict = true});
  ASSERT_EQ(strict.commits.size(), 1u);
  EXPECT_TRUE(verify_plan(log, strict, {.strict = true}).any() == false);
}

TEST(Remedy, BackToBackAccessesAreUncoverable) {
  auto log = log_with_accesses({{100, 0, {0, 50}, AccessType::Write},
                                {100, 1, {0, 50}, AccessType::Read}});
  const auto plan = suggest_commits(log);
  EXPECT_TRUE(plan.commits.empty());
  EXPECT_EQ(plan.uncoverable, 1u);
}

TEST(Remedy, CleanLogNeedsNothing) {
  auto log = log_with_accesses({{100, 0, {0, 50}, AccessType::Write},
                                {500, 1, {100, 150}, AccessType::Write}});
  const auto plan = suggest_commits(log);
  EXPECT_TRUE(plan.commits.empty());
  EXPECT_EQ(plan.uncoverable, 0u);
}

// Integration: the planner clears FLASH's cross-process conflicts, and the
// suggested insertion count matches the flush-epoch structure (one commit
// per adjacent metadata-rewrite pair per file).
TEST(RemedyIntegration, PlansClearFlash) {
  apps::AppConfig cfg;
  cfg.nranks = 16;
  cfg.ranks_per_node = 4;
  cfg.bytes_per_rank = 64 * 1024;
  const auto bundle = apps::run_app(*apps::find_app("FLASH-fbs"), cfg);
  const auto log = reconstruct_accesses(bundle);

  // FLASH already fsyncs in H5Fflush, so the plan should be EMPTY under
  // commit semantics — the point of Section 6.3.
  const auto plan = suggest_commits(log);
  EXPECT_TRUE(plan.commits.empty())
      << "FLASH's own fsyncs already clear its commit-semantics conflicts";
}

// Integration: NWChem's same-process conflicts are plannable in strict
// mode, and applying the plan clears them.
TEST(RemedyIntegration, StrictPlanClearsNWChem) {
  apps::AppConfig cfg;
  cfg.nranks = 16;
  cfg.ranks_per_node = 4;
  cfg.bytes_per_rank = 64 * 1024;
  const auto bundle = apps::run_app(*apps::find_app("NWChem"), cfg);
  const auto log = reconstruct_accesses(bundle);
  const auto before = detect_conflicts(log);
  ASSERT_TRUE(before.commit.any());
  const auto plan = suggest_commits(log, {.strict = true});
  EXPECT_FALSE(plan.commits.empty());
  EXPECT_EQ(plan.uncoverable, 0u);
  EXPECT_FALSE(verify_plan(log, plan, {.strict = true}).any());
}

}  // namespace
}  // namespace pfsem::core
