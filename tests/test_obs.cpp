// pfsem::obs tests: deterministic metrics registry, log2 histograms,
// Chrome-trace export, and the two wiring contracts that matter —
//
//  1. The stable metrics dump is byte-identical across analysis thread
//     counts {1,2,4} AND capture paths {fast, reference}; it is the
//     diff-testable observability artifact.
//  2. Observability is a pure observer: a run with obs wired in produces
//     a byte-identical trace bundle to the same run without it.
//
// Plus: histogram bucket edge cases, spans surviving fault-injected
// crash runs, and the trace_event JSON schema keys.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "pfsem/apps/registry.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/overlap.hpp"
#include "pfsem/exec/pool.hpp"
#include "pfsem/fault/plan.hpp"
#include "pfsem/iolib/posix_io.hpp"
#include "pfsem/obs/obs.hpp"
#include "pfsem/trace/serialize.hpp"
#include "pfsem/util/error.hpp"

namespace {

using namespace pfsem;

// --- registry basics -------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesAndDedupe) {
  obs::MetricsRegistry m;
  const auto c = m.counter("a.count");
  m.add(c);
  m.add(c, 41);
  EXPECT_EQ(m.value(c), 42u);

  // Re-registering the same name yields the same slot.
  const auto c2 = m.counter("a.count");
  EXPECT_EQ(c2.slot, c.slot);

  const auto g = m.gauge("a.gauge");
  m.set(g, -7);
  EXPECT_EQ(m.value(g), -7);

  // Same name with a different kind or stability is a wiring bug.
  EXPECT_THROW((void)m.gauge("a.count"), Error);
  EXPECT_THROW((void)m.counter("a.count", obs::Stability::Volatile), Error);
}

TEST(MetricsRegistry, HistogramBucketEdges) {
  // bucket_of is bit_width: 0 -> 0, [2^(k-1), 2^k) -> k, top bit -> 64.
  using R = obs::MetricsRegistry;
  EXPECT_EQ(R::bucket_of(0), 0u);
  EXPECT_EQ(R::bucket_of(1), 1u);
  EXPECT_EQ(R::bucket_of(2), 2u);
  EXPECT_EQ(R::bucket_of(3), 2u);
  EXPECT_EQ(R::bucket_of(4), 3u);
  EXPECT_EQ(R::bucket_of((std::uint64_t{1} << 62)), 63u);
  EXPECT_EQ(R::bucket_of((std::uint64_t{1} << 63) - 1), 63u);
  EXPECT_EQ(R::bucket_of(std::uint64_t{1} << 63), 64u);
  EXPECT_EQ(R::bucket_of(~std::uint64_t{0}), 64u);

  obs::MetricsRegistry m;
  const auto h = m.histogram("io.sizes");
  m.observe(h, 0);
  m.observe(h, 1);
  m.observe(h, ~std::uint64_t{0});  // overflow bucket; sum wraps (u64)
  EXPECT_EQ(m.count(h), 3u);
  EXPECT_EQ(m.bucket(h, 0), 1u);
  EXPECT_EQ(m.bucket(h, 1), 1u);
  EXPECT_EQ(m.bucket(h, R::kHistBuckets - 1), 1u);
  EXPECT_EQ(m.sum(h), 0u) << "1 + UINT64_MAX wraps to 0 deterministically";
}

TEST(MetricsRegistry, DumpSeparatesStableFromVolatile) {
  obs::MetricsRegistry m;
  m.add(m.counter("stable.one"), 5);
  m.add(m.counter("noisy.tier_hits", obs::Stability::Volatile), 9);

  std::ostringstream stable;
  m.dump(stable);
  EXPECT_NE(stable.str().find("counter stable.one 5"), std::string::npos);
  EXPECT_EQ(stable.str().find("noisy.tier_hits"), std::string::npos)
      << "volatile metrics must never enter the byte-diffable dump";

  std::ostringstream both;
  m.dump(both, /*include_volatile=*/true);
  EXPECT_NE(both.str().find("counter noisy.tier_hits 9"), std::string::npos);
}

// --- tracer / Chrome export ------------------------------------------------

TEST(Tracer, ChromeJsonCarriesRequiredKeys) {
  obs::Tracer t;
  t.complete({obs::kPidIo, 3}, "pwrite", 1'500, 2'000, {"bytes", 4096});
  t.instant({obs::kPidFault, 1}, "crash", 9'999);

  std::ostringstream os;
  t.write_chrome_json(os);
  const std::string json = os.str();
  // The keys the trace_event format requires (CI validates with a real
  // JSON parser; this guards the schema at the unit level).
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos) << "track metadata";
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  // ns -> us fixed-point: 1500 ns = 1.500 us, 2000 ns dur = 2.000 us.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
}

// --- the determinism contract ---------------------------------------------

/// One full simulate + analyze pass with observability on; returns the
/// stable metrics dump.
std::string stable_dump(int threads, bool reference) {
  obs::Run run(obs::Config{.metrics = true, .tracing = false});
  const auto* info = apps::find_app("pF3D-IO");
  EXPECT_NE(info, nullptr);
  apps::AppConfig cfg;
  cfg.nranks = 8;
  cfg.ranks_per_node = 4;
  if (reference) {
    cfg.scheduler = sim::SchedulerKind::Heap;
    cfg.capture = trace::CaptureMode::Reference;
  }
  cfg.obs = &run;
  const auto bundle = apps::run_app(*info, cfg);

  // Analysis rides the work-stealing pool; its pool.* metrics are
  // volatile, so the stable dump must not depend on `threads`.
  exec::set_observer(&run);
  const auto log = core::reconstruct_accesses(bundle);
  const auto pairs = core::detect_file_overlaps(log, {}, threads);
  (void)core::detect_conflicts(log, pairs, {.threads = threads});
  exec::set_observer(nullptr);

  std::ostringstream os;
  run.metrics.dump(os);
  // The human-facing summary rides inside analysis output whose
  // byte-identity across --threads is a core guarantee, so it is held
  // to the same standard as the dump.
  os << obs::summary(run);
  return os.str();
}

TEST(ObsDeterminism, StableDumpIdenticalAcrossThreadsAndCapture) {
  const std::string baseline = stable_dump(/*threads=*/1, /*reference=*/false);
  EXPECT_NE(baseline.find("counter io.ops"), std::string::npos);
  for (const int threads : {2, 4}) {
    EXPECT_EQ(stable_dump(threads, /*reference=*/false), baseline)
        << "threads=" << threads;
  }
  for (const int threads : {1, 4}) {
    EXPECT_EQ(stable_dump(threads, /*reference=*/true), baseline)
        << "reference capture, threads=" << threads;
  }
}

/// Serialize one GTC run, with or without observability wired in.
std::string run_bytes(obs::Run* run) {
  const auto* info = apps::find_app("GTC");
  EXPECT_NE(info, nullptr);
  apps::AppConfig cfg;
  cfg.nranks = 8;
  cfg.ranks_per_node = 4;
  cfg.obs = run;
  const auto bundle = apps::run_app(*info, cfg);
  std::ostringstream os;
  trace::write_binary(bundle, os);
  return os.str();
}

TEST(ObsDeterminism, ObservedRunProducesIdenticalBundle) {
  const std::string off = run_bytes(nullptr);
  obs::Run run(obs::Config{.metrics = true, .tracing = true});
  EXPECT_EQ(run_bytes(&run), off)
      << "wiring obs in must not perturb the simulation";
  EXPECT_GT(run.metrics.value(run.io_ops), 0u);
  EXPECT_GT(run.tracer.size(), 0u);
}

// --- spans survive fault-injected crash runs -------------------------------

TEST(ObsFaults, CrashRunEmitsFaultEventsAndKilledSpans) {
  obs::Run run(obs::Config{.metrics = true, .tracing = true});
  apps::AppConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 2;
  cfg.obs = &run;
  apps::Harness h(cfg);
  h.set_faults(fault::FaultPlan::parse("crash:rank=0,t=5ms"),
               /*fault_seed=*/7);
  iolib::PosixIo posix(h.ctx());

  h.run([&](Rank r) -> sim::Task<void> {
    const int fd = co_await posix.open(r, "data" + std::to_string(r),
                                       trace::kCreate | trace::kWrOnly);
    co_await posix.pwrite(r, fd, 0, 4096);
    co_await h.engine().delay(10'000'000);  // rank 0's crash lands here
    co_await posix.pwrite(r, fd, 4096, 4096);
    co_await posix.close(r, fd);
  });

  EXPECT_EQ(run.metrics.value(run.fault_crashes), 1u);
  EXPECT_EQ(run.metrics.value(run.sim_roots_killed), 1u);

  bool saw_crash_instant = false;
  bool saw_killed_span = false;
  bool saw_survivor_span = false;
  for (const auto& e : run.tracer.events()) {
    if (e.pid == obs::kPidFault && std::string_view(e.name) == "crash" &&
        e.tid == 0) {
      saw_crash_instant = true;
      EXPECT_EQ(e.ts, 5'000'000) << "crash instant carries the sim time";
    }
    if (e.pid == obs::kPidHarness &&
        std::string_view(e.name) == "rank-program") {
      const bool killed =
          e.a0.key != nullptr && std::string_view(e.a0.key) == "killed";
      if (e.tid == 0 && killed) saw_killed_span = true;
      if (e.tid == 1 && !killed) saw_survivor_span = true;
    }
  }
  EXPECT_TRUE(saw_crash_instant) << "injected fault must appear in the stream";
  EXPECT_TRUE(saw_killed_span) << "crashed rank still gets its span";
  EXPECT_TRUE(saw_survivor_span);
}

}  // namespace
