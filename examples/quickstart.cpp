// Quickstart: simulate a tiny two-rank application, capture its I/O trace,
// and run the full consistency-semantics analysis on it.
//
//   $ ./quickstart
//
// The workload is the paper's canonical producer/consumer: rank 0 writes a
// restart file, both ranks synchronize with a barrier, rank 1 reads the
// file back *without* rank 0 having closed it — a RAW-D potential conflict
// that is real under session semantics and (because rank 0 fsyncs) clears
// under commit semantics.

#include <iostream>

#include "pfsem/core/advisor.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/happens_before.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/iolib/posix_io.hpp"

int main() {
  using namespace pfsem;

  // 1. Wire a simulated run: DES engine + MPI world + PFS + tracer.
  sim::Engine engine;
  trace::Collector collector(/*nranks=*/2);
  vfs::Pfs pfs;  // strong (POSIX) semantics by default
  mpi::World world(engine, collector, mpi::WorldConfig{.nranks = 2});
  iolib::PosixIo posix({.engine = &engine,
                        .world = &world,
                        .pfs = &pfs,
                        .collector = &collector});

  // 2. Describe each rank's program as a coroutine.
  auto producer = [&]() -> sim::Task<void> {
    const int fd = co_await posix.open(0, "restart.dat",
                                       trace::kCreate | trace::kRdWr);
    co_await posix.write(0, fd, 1 << 20);  // 1 MiB of state
    co_await posix.fsync(0, fd);           // commit, but no close yet
    co_await world.barrier(0);
    co_await posix.close(0, fd);
  };
  auto consumer = [&]() -> sim::Task<void> {
    const int fd = co_await posix.open(1, "restart.dat",
                                       trace::kCreate | trace::kRdWr);
    co_await world.barrier(1);
    co_await posix.pread(1, fd, 0, 1 << 20);
    co_await posix.close(1, fd);
  };
  engine.spawn(producer());
  engine.spawn(consumer());
  engine.run();

  // 3. Analyze the captured trace.
  const trace::TraceBundle bundle = collector.take();
  const core::AccessLog log = core::reconstruct_accesses(bundle);
  const core::ConflictReport report = core::detect_conflicts(log);
  core::HappensBefore hb(bundle.comm, bundle.nranks);
  const core::Advice advice = core::advise(report, &hb);

  std::cout << "trace records: " << bundle.records.size()
            << ", matched comm events: "
            << bundle.comm.collectives.size() + bundle.comm.p2p.size() << "\n";
  std::cout << "overlapping write-involved pairs: " << report.potential_pairs
            << "\n";
  std::cout << "conflicts under session semantics: "
            << (report.session.any() ? "yes" : "no")
            << " (RAW-D=" << (report.session.raw_d ? "yes" : "no") << ")\n";
  std::cout << "conflicts under commit semantics:  "
            << (report.commit.any() ? "yes" : "no")
            << " (the fsync before the barrier is the commit)\n";
  for (const auto& c : report.conflicts) {
    std::cout << "  " << core::to_string(c.kind) << "-"
              << (c.same_process ? 'S' : 'D') << " on " << log.path(c.file) << ": rank "
              << c.first.rank << " wrote " << c.first.ext << " at "
              << to_seconds(c.first.t) << "s, rank " << c.second.rank << " "
              << core::to_string(c.second.type) << " at "
              << to_seconds(c.second.t) << "s"
              << (c.under_session ? " [session]" : "")
              << (c.under_commit ? " [commit]" : "") << "\n";
  }
  std::cout << "race-free: " << (advice.race_free ? "yes" : "NO") << "\n";
  std::cout << "weakest safe PFS model: " << vfs::to_string(advice.weakest)
            << "\n  rationale: " << advice.rationale << "\n";
  return 0;
}
