// Offline analysis workflow: capture a run's trace to a file, then load
// and analyze it in a separate pass — the Recorder-style capture/analyze
// split the paper's tooling uses.
//
//   $ ./offline_analysis             # capture to flash.pfsemtrc + analyze
//   $ ./offline_analysis trace.bin   # analyze an existing trace file

#include <fstream>
#include <iostream>

#include "pfsem/apps/registry.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/metadata_census.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/pattern.hpp"
#include "pfsem/trace/serialize.hpp"
#include "pfsem/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pfsem;

  std::string path = argc > 1 ? argv[1] : "flash.pfsemtrc";
  if (argc <= 1) {
    // Capture phase: run FLASH-fbs and persist the bundle.
    std::cout << "capturing FLASH-fbs trace -> " << path << "\n";
    apps::AppConfig cfg;
    cfg.nranks = 64;
    const auto bundle = apps::run_app(*apps::find_app("FLASH-fbs"), cfg);
    std::ofstream os(path, std::ios::binary);
    trace::write_binary(bundle, os);
    if (!os) {
      std::cerr << "failed to write " << path << "\n";
      return 1;
    }
  }

  // Analysis phase: everything below works from the file alone.
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  const auto bundle = trace::read_binary(is);
  std::cout << "loaded " << bundle.records.size() << " records from "
            << bundle.nranks << " ranks\n\n";

  const auto log = core::reconstruct_accesses(bundle);
  const auto report = core::detect_conflicts(log);
  const auto pattern = core::classify_high_level(log, bundle.nranks);
  const auto census = core::census_metadata(bundle);

  std::cout << "high-level pattern: " << pattern.xy << " "
            << core::to_string(pattern.layout) << " (dominant file "
            << pattern.dominant_file << ")\n";
  std::cout << "files touched: " << log.file_count()
            << ", potential-conflict pairs: " << report.potential_pairs << "\n";
  std::cout << "session-semantics conflict classes:"
            << (report.session.waw_s ? " WAW-S" : "")
            << (report.session.waw_d ? " WAW-D" : "")
            << (report.session.raw_s ? " RAW-S" : "")
            << (report.session.raw_d ? " RAW-D" : "")
            << (report.session.any() ? "" : " none") << "\n";
  std::cout << "metadata operations used: " << census.distinct_ops() << "\n";

  // Per-file conflict detail, like the per-application reports the paper
  // publishes alongside its traces.
  Table t({"file", "accesses", "session pairs", "commit pairs"});
  for (const FileId id : log.ids_by_path()) {
    const auto& fl = log.files[id];
    std::uint64_t nsess = 0, ncommit = 0;
    for (const auto& c : report.conflicts) {
      if (c.file != id) continue;
      nsess += c.under_session ? 1 : 0;
      ncommit += c.under_commit ? 1 : 0;
    }
    if (nsess + ncommit == 0) continue;
    t.add_row({std::string(log.path(id)), std::to_string(fl.accesses.size()),
               std::to_string(nsess), std::to_string(ncommit)});
  }
  if (t.rows() > 0) {
    std::cout << "\nfiles with conflicts:\n";
    t.print(std::cout);
  }
  return 0;
}
