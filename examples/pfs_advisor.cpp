// PFS advisor: run one of the bundled application models (or all of them)
// and report the weakest consistency model it can run on, plus real-world
// file systems in that class (Table 1).
//
//   $ ./pfs_advisor                 # all configurations
//   $ ./pfs_advisor FLASH-fbs       # one configuration
//   $ ./pfs_advisor --list          # list configuration names

#include <iostream>
#include <string>

#include "pfsem/apps/registry.hpp"
#include "pfsem/core/advisor.hpp"
#include "pfsem/core/happens_before.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/util/table.hpp"

namespace {

using namespace pfsem;

const char* filesystems_for(vfs::ConsistencyModel m) {
  switch (m) {
    case vfs::ConsistencyModel::Strong:
      return "GPFS, Lustre, GekkoFS, BeeGFS, BatchFS, OrangeFS";
    case vfs::ConsistencyModel::Commit:
      return "BSCFS, UnifyFS, SymphonyFS, BurstFS";
    case vfs::ConsistencyModel::Session:
      return "NFS, AFS, DDN IME, Gfarm/BB (and anything stronger)";
    case vfs::ConsistencyModel::Eventual:
      return "PLFS, echofs, MarFS (and anything stronger)";
  }
  return "?";
}

void advise_one(const apps::AppInfo& info, Table& table) {
  apps::AppConfig cfg;
  cfg.nranks = 64;
  const auto bundle = apps::run_app(info, cfg);
  const auto log = core::reconstruct_accesses(bundle);
  const auto report = core::detect_conflicts(log);
  core::HappensBefore hb(bundle.comm, cfg.nranks);
  const auto advice = core::advise(report, &hb);
  table.add_row({info.name, vfs::to_string(advice.weakest),
                 filesystems_for(advice.weakest)});
}

}  // namespace

int main(int argc, char** argv) {
  const std::string arg = argc > 1 ? argv[1] : "";
  if (arg == "--list") {
    for (const auto& info : apps::registry()) std::cout << info.name << "\n";
    return 0;
  }
  Table t({"Configuration", "weakest safe model", "suitable file systems"});
  if (!arg.empty()) {
    const auto* info = apps::find_app(arg);
    if (!info) {
      std::cerr << "unknown configuration '" << arg
                << "' (use --list to see the options)\n";
      return 1;
    }
    advise_one(*info, t);
  } else {
    for (const auto& info : apps::registry()) advise_one(info, t);
  }
  t.print(std::cout);
  std::cout << "\n('weakest safe' assumes the PFS orders same-process "
               "accesses, which all studied systems except BurstFS do.)\n";
  return 0;
}
