// Burst-buffer checkpointing end-to-end: a checkpoint/restart cycle on the
// node-local burst-buffer tier, using commit semantics the way UnifyFS
// intends — write locally, fsync to publish, laminate the finished
// checkpoint, restart reads from wherever the data lives.
//
//   $ ./burst_buffer_checkpoint

#include <iostream>

#include "pfsem/iolib/posix_io.hpp"
#include "pfsem/vfs/burst_buffer.hpp"

int main() {
  using namespace pfsem;
  constexpr int kRanks = 8;
  constexpr std::uint64_t kSlice = 1 << 20;  // 1 MiB per rank

  sim::Engine engine;
  trace::Collector collector(kRanks);
  vfs::BurstBufferPfs bb(vfs::BurstBufferConfig{.ranks_per_node = 4});
  mpi::World world(engine, collector,
                   mpi::WorldConfig{.nranks = kRanks, .ranks_per_node = 4});
  iolib::PosixIo posix({.engine = &engine,
                        .world = &world,
                        .pfs = &bb,
                        .collector = &collector});

  SimTime checkpoint_done = 0;
  auto program = [&](Rank r) -> sim::Task<void> {
    // --- checkpoint: every rank writes its slice to the local BB ---
    const int fd = co_await posix.open(r, "ckpt.0",
                                       trace::kCreate | trace::kRdWr);
    co_await posix.pwrite(r, fd, static_cast<Offset>(r) * kSlice, kSlice);
    co_await posix.fsync(r, fd);  // publish extents to the index
    co_await posix.close(r, fd);
    co_await world.barrier(r);
    if (r == 0) {
      checkpoint_done = engine.now();
      // Freeze the finished checkpoint (UnifyFS lamination).
      bb.laminate("ckpt.0", engine.now());
    }
    co_await world.barrier(r);

    // --- restart: ranks read their *neighbour's* slice (shifted restart
    // decomposition), so some reads are node-local and some remote ---
    const int rfd = co_await posix.open(r, "ckpt.0", trace::kRdOnly);
    const Rank source = (r + 1) % kRanks;
    co_await posix.pread(r, rfd, static_cast<Offset>(source) * kSlice, kSlice);
    bool fresh = true;
    for (const auto& e : posix.last_read_extents()) {
      if (e.version == 0) fresh = false;
    }
    if (!fresh) std::cout << "rank " << r << " read STALE data!\n";
    co_await posix.close(r, rfd);
    co_await world.barrier(r);
  };
  for (Rank r = 0; r < kRanks; ++r) engine.spawn(program(r));
  engine.run();

  const auto& st = bb.stats();
  std::cout << "checkpoint wall time: " << to_seconds(checkpoint_done) * 1e3
            << " ms (simulated)\n"
            << "local writes: " << st.local_writes << " ("
            << st.local_bytes / (1 << 20) << " MiB at NVMe speed)\n"
            << "index publishes: " << st.index_publishes << "\n"
            << "restart reads: " << st.local_reads << " local, "
            << st.remote_reads << " remote (" << st.remote_bytes / (1 << 20)
            << " MiB over the interconnect)\n"
            << "every restart read returned committed data — commit "
               "semantics plus fsync/laminate is exactly enough for "
               "checkpoint/restart, which is why Table 4's applications "
               "can use burst buffers.\n";
  return 0;
}
