// The FLASH fix (paper Section 6.3): FLASH is the only studied application
// with cross-process conflicts under session semantics, caused by HDF5
// metadata flushes. The paper proposes two one-line remedies:
//
//   (a) enable HDF5 collective metadata mode, so only rank 0 performs
//       metadata I/O, or
//   (b) remove the H5Fflush() between datasets (the final H5Fclose still
//       flushes, so correctness is preserved in the absence of failures).
//
// This example runs FLASH three ways — stock, fix (a), fix (b) — and shows
// the cross-process conflicts disappearing, making FLASH safe on every
// session-semantics PFS.

#include <iostream>

#include "pfsem/apps/harness.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/iolib/hdf5_lite.hpp"
#include "pfsem/util/table.hpp"

namespace {

using namespace pfsem;

core::ConflictReport run_flash_variant(iolib::H5Options opt) {
  apps::AppConfig cfg;
  cfg.nranks = 64;
  cfg.bytes_per_rank = 128 * 1024;
  apps::Harness h(cfg);
  iolib::Hdf5Lite h5(h.ctx(), opt);

  h.run([&](Rank r) -> sim::Task<void> {
    for (int checkpoint = 0; checkpoint < 3; ++checkpoint) {
      const std::string path = "flash_chk_" + std::to_string(checkpoint);
      auto* f = co_await h5.create(r, path, h.world().all());
      for (int d = 0; d < 8; ++d) {
        const std::string name = "var" + std::to_string(d);
        const std::uint64_t blk = cfg.bytes_per_rank / 8;
        co_await h5.dataset_create(r, f, name,
                                   blk * static_cast<std::uint64_t>(cfg.nranks));
        co_await h5.dataset_write(r, f, name, static_cast<Offset>(r) * blk, blk);
      }
      co_await h5.close(r, f);
    }
  });
  return core::detect_conflicts(core::reconstruct_accesses(h.finish()));
}

std::string describe(const core::ConflictMatrix& m) {
  std::string out;
  if (m.waw_s) out += "WAW-S ";
  if (m.waw_d) out += "WAW-D ";
  if (m.raw_s) out += "RAW-S ";
  if (m.raw_d) out += "RAW-D ";
  return out.empty() ? "-" : out;
}

}  // namespace

int main() {
  iolib::H5Options stock;
  stock.flush_after_dataset = true;
  stock.metadata_writers = 30;

  iolib::H5Options fix_a = stock;
  fix_a.collective_metadata = true;  // rank 0 does all metadata I/O

  iolib::H5Options fix_b = stock;
  fix_b.flush_after_dataset = false;  // drop the per-dataset H5Fflush

  Table t({"variant", "session conflicts", "commit conflicts",
           "safe on session-semantics PFS?"});
  struct Row {
    const char* name;
    iolib::H5Options opt;
  } rows[] = {{"stock FLASH (per-dataset H5Fflush)", stock},
              {"fix (a): collective metadata mode", fix_a},
              {"fix (b): remove H5Fflush", fix_b}};
  for (const auto& row : rows) {
    const auto rep = run_flash_variant(row.opt);
    const bool safe = !rep.session.waw_d && !rep.session.raw_d;
    t.add_row({row.name, describe(rep.session), describe(rep.commit),
               safe ? "yes" : "NO (needs commit semantics)"});
  }
  t.print(std::cout);
  std::cout << "\nAs in the paper: stock FLASH needs commit semantics (the "
               "H5Fflush fsync clears its conflicts), while either one-line "
               "change also makes it correct under session semantics.\n";
  return 0;
}
