// Stale-read demonstration: the same producer/consumer program runs on
// all four PFS consistency models, and we observe exactly which write each
// read returned — the behavioural reality behind the paper's conflict
// classes. Three synchronization disciplines are tried:
//
//   none   : write -> barrier -> read
//   commit : write -> fsync -> barrier -> read
//   session: write -> close -> barrier -> open -> read
//
// Expected: strong is always fresh; commit needs the fsync; session needs
// the close->open pair; eventual is stale in all three (propagation is
// slower than the barrier).

#include <iostream>

#include "pfsem/iolib/posix_io.hpp"
#include "pfsem/util/table.hpp"

namespace {

using namespace pfsem;

enum class Discipline { None, Commit, Session };

bool read_is_fresh(vfs::ConsistencyModel model, Discipline d) {
  sim::Engine engine;
  trace::Collector collector(2);
  vfs::PfsConfig pcfg;
  pcfg.model = model;
  vfs::Pfs pfs(pcfg);
  mpi::World world(engine, collector, mpi::WorldConfig{.nranks = 2});
  iolib::PosixIo posix({.engine = &engine,
                        .world = &world,
                        .pfs = &pfs,
                        .collector = &collector});

  bool fresh = false;
  auto producer = [&]() -> sim::Task<void> {
    const int fd = co_await posix.open(0, "data", trace::kCreate | trace::kRdWr);
    co_await posix.write(0, fd, 4096);
    if (d == Discipline::Commit) co_await posix.fsync(0, fd);
    if (d == Discipline::Session) co_await posix.close(0, fd);
    co_await world.barrier(0);
    if (d != Discipline::Session) co_await posix.close(0, fd);
  };
  auto consumer = [&]() -> sim::Task<void> {
    int fd = -1;
    if (d != Discipline::Session) {
      fd = co_await posix.open(1, "data", trace::kCreate | trace::kRdWr);
    }
    co_await world.barrier(1);
    if (d == Discipline::Session) {
      fd = co_await posix.open(1, "data", trace::kRdOnly);
    }
    co_await posix.pread(1, fd, 0, 4096);
    fresh = true;
    for (const auto& e : posix.last_read_extents()) {
      if (e.version == 0) fresh = false;  // hole: the write is not visible
    }
    co_await posix.close(1, fd);
  };
  engine.spawn(producer());
  engine.spawn(consumer());
  engine.run();
  return fresh;
}

}  // namespace

int main() {
  Table t({"synchronization", "strong", "commit", "session", "eventual"});
  const struct {
    const char* name;
    Discipline d;
  } disciplines[] = {{"barrier only", Discipline::None},
                     {"fsync + barrier", Discipline::Commit},
                     {"close + barrier + open", Discipline::Session}};
  for (const auto& disc : disciplines) {
    std::vector<std::string> row{disc.name};
    for (auto m : {vfs::ConsistencyModel::Strong, vfs::ConsistencyModel::Commit,
                   vfs::ConsistencyModel::Session,
                   vfs::ConsistencyModel::Eventual}) {
      row.push_back(read_is_fresh(m, disc.d) ? "fresh" : "STALE");
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << "\nEach column is one PFS consistency model; each row one "
               "application synchronization discipline. A STALE cell is "
               "exactly a conflict the detector flags for that model.\n";
  return 0;
}
